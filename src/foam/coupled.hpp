#pragma once

/// \file coupled.hpp
/// The Fast Ocean-Atmosphere Model: coupled driver.
///
/// Scheduling follows paper §5 / Figure 2: the atmosphere takes 30-minute
/// steps (48 per simulated day) with radiation recomputed twice daily; the
/// ocean is called every 6 hours (4 times per day); the coupler exchanges
/// averaged fluxes at the ocean calls and runs the land / river / ice
/// substrate in between.
///
/// Two drivers are provided:
///  * CoupledFoam — single-process, used by the science benches (Fig. 3,
///    Fig. 4, CCM2-vs-CCM3) and the examples;
///  * run_coupled_parallel — SPMD over a foam::par world, with the ocean on
///    its own rank(s) and the coupler co-resident with the atmosphere
///    ranks, instrumented with per-rank activity timelines (Fig. 2 and the
///    scaling "table"). The flux exchange runs either blocking (the
///    atmosphere waits out the ocean call) or with comm/compute overlap
///    (ParallelRunOptions::overlap): the forcing send and the SST-reply
///    receive are posted nonblocking and the atmosphere steps the next
///    interval while the ocean integrates — the reply is applied one
///    exchange late (standard lagged/asynchronous coupling), trading a
///    6-hour SST lag for the ocean call disappearing from the critical
///    path.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include <string>

#include "atm/model.hpp"
#include "base/calendar.hpp"
#include "coupler/coupler.hpp"
#include "ocean/model.hpp"
#include "par/fault.hpp"
#include "par/timers.hpp"
#include "par/verify/verify.hpp"
#include "telemetry/observe.hpp"
#include "telemetry/telemetry.hpp"

namespace foam {

struct FoamConfig {
  atm::AtmConfig atm = atm::AtmConfig::r15_default();
  ocean::OceanConfig ocean = ocean::OceanConfig::foam_default();
  /// Coupling (= ocean call) interval [s]; paper: 6 hours.
  double exchange_seconds = 6.0 * 3600.0;
  /// Acceleration factor for the ocean in long climate runs: the ocean
  /// advances accel * exchange interval of its own time per coupling
  /// (distorted-physics acceleration; 1 = synchronous).
  double ocean_accel = 1.0;

  static FoamConfig paper_default() { return FoamConfig{}; }
  /// Small configuration for tests.
  static FoamConfig testing() {
    FoamConfig c;
    c.atm = atm::AtmConfig::testing();
    c.ocean = ocean::OceanConfig::testing(48, 48, 8);
    return c;
  }

  /// Throws foam::Error unless the coupling parameters are consistent:
  /// positive atmosphere step, exchange interval and ocean acceleration,
  /// and an exchange interval that is a whole number of atmosphere steps.
  /// Called by both drivers before any rank starts stepping.
  void validate() const;
};

/// Single-process coupled model.
class CoupledFoam {
 public:
  explicit CoupledFoam(const FoamConfig& cfg);

  /// One atmosphere step (30 min), including any due ocean call/exchange.
  void step();
  void run_days(double days);

  const ModelTime& now() const { return now_; }
  const atm::AtmosphereModel& atmosphere() const { return *atm_; }
  atm::AtmosphereModel& atmosphere() { return *atm_; }
  const ocean::OceanModel& ocean_model() const { return *ocean_; }
  const coupler::Coupler& coupling() const { return *coupler_; }
  const numerics::MercatorGrid& ocean_grid() const { return ogrid_; }
  const Field2D<int>& ocean_mask() const { return omask_; }

  /// SST on the ocean grid [C] (land cells 0).
  Field2Dd sst() const { return ocean_->sst(); }

  /// Abstract cost so far (atmosphere + ocean grid-point updates).
  double work_points() const;

  /// Write a restart file; a model constructed with the same FoamConfig
  /// and restored with restore() continues bitwise-identically (the
  /// stochastic stirring state is checkpointed too).
  void checkpoint(const std::string& path) const;
  void restore(const std::string& path);

 private:
  void exchange();

  FoamConfig cfg_;
  numerics::MercatorGrid ogrid_;
  Field2Dd bathy_;
  Field2D<int> omask_;
  std::unique_ptr<atm::AtmosphereModel> atm_;
  std::unique_ptr<ocean::OceanModel> ocean_;
  std::unique_ptr<coupler::Coupler> coupler_;
  ModelTime now_;
  std::int64_t atm_steps_ = 0;
};

/// Result of a parallel coupled run.
struct ParallelRunResult {
  double simulated_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Model speedup: simulated time / wall time.
  double speedup() const {
    return wall_seconds > 0.0 ? simulated_seconds / wall_seconds : 0.0;
  }
  /// Per-world-rank activity timelines (atmosphere/coupler/ocean/idle/
  /// comm-wait); empty when ParallelRunOptions::capture_timelines is off.
  std::vector<std::vector<par::Segment>> timelines;

  /// Seconds world rank \p rank spent in region \p r (0 without timelines).
  double region_seconds(int rank, par::Region r) const {
    if (rank < 0 || rank >= static_cast<int>(timelines.size())) return 0.0;
    double sum = 0.0;
    for (const par::Segment& seg : timelines[rank])
      if (seg.region == r) sum += seg.t1 - seg.t0;
    return sum;
  }

  /// Per-world-rank hierarchical traces (name table + nested spans); filled
  /// only when ParallelRunOptions::telemetry.level == TraceLevel::kFull.
  /// Feed to telemetry::write_chrome_trace for a Perfetto timeline.
  std::vector<telemetry::RankTrace> traces;

  /// Per-world-rank flattened metric samples (comm counters, spectral batch
  /// stats, coupler counters, ...); empty at TraceLevel::kOff.
  std::vector<std::vector<std::pair<std::string, double>>> metrics;

  /// Seconds rank \p rank spent in depth-0 spans of region \p r according
  /// to the hierarchical trace — the cross-check against region_seconds.
  double span_region_seconds(int rank, par::Region r) const {
    if (rank < 0 || rank >= static_cast<int>(traces.size())) return 0.0;
    return traces[rank].region_total(r);
  }

  /// Total MPI-semantics findings across all ranks for the run, or -1 when
  /// verification was off (ParallelRunOptions::verify). 0 proves the run
  /// was deadlock-free, leak-free and wildcard-deterministic as observed.
  std::int64_t verify_findings = -1;

  /// The run's final gathered ocean SST (full grid), filled on the ocean
  /// ranks only (empty elsewhere). The same field for every rank layout of
  /// a given config — the decomposition-independence observable.
  Field2Dd final_sst;

  /// Sampling-profiler histogram (ObservabilityOptions::profile): sample
  /// counts per (rank, innermost open span). Empty when profiling is off.
  std::vector<telemetry::ProfileEntry> profile;
  /// Measured seconds between profiler samples (the effective interval —
  /// multiply sample counts by this for time attribution).
  double profile_interval_seconds = 0.0;

  /// Profiler-attributed seconds rank \p rank spent with a span of region
  /// class \p r innermost — the sampled counterpart of region_seconds.
  double profile_seconds(int rank, par::Region r) const {
    double sum = 0.0;
    for (const telemetry::ProfileEntry& e : profile)
      if (e.rank == rank && e.region == r)
        sum += static_cast<double>(e.samples) * profile_interval_seconds;
    return sum;
  }
};

/// Checkpoint policy for the parallel driver (see foam/checkpoint.hpp for
/// the on-disk layout). Checkpoints are taken at simulated-day boundaries:
/// every rank writes its own crash-safe shard, then world rank 0 writes the
/// manifest and atomically advances the `<prefix>.latest.foam` pointer. A
/// resumed run is bitwise identical to the uninterrupted one, in both
/// overlap modes.
struct CheckpointOptions {
  /// Path prefix for checkpoint files; empty disables checkpointing.
  std::string path_prefix;
  /// Cadence in simulated days (rounded to whole days, minimum 1).
  double every_days = 1.0;
  /// Resume from the checkpoint named by `<prefix>.latest.foam` before
  /// stepping (the prefix must have at least one complete checkpoint).
  bool resume = false;

  bool enabled() const { return !path_prefix.empty(); }
};

/// Explicit placement of a coupled run's ranks: the first atm_ranks world
/// ranks host the atmosphere + coupler, the remaining ocean_px * ocean_py
/// ranks host the ocean decomposed over a px * py Cartesian rank grid
/// (par::Decomp2D, x-major). Replaces the old positional "n_atm, rest is
/// one ocean row block each" convention, which could not express 2-D ocean
/// layouts and silently had no valid spelling for "0 ocean ranks".
struct RankLayout {
  int atm_ranks = 1;
  int ocean_px = 1;
  int ocean_py = 1;

  int ocean_ranks() const { return ocean_px * ocean_py; }
  int world_size() const { return atm_ranks + ocean_ranks(); }

  /// The historic layout: ocean split into latitude-row blocks only.
  static RankLayout rows(int atm, int ocean_rows) {
    return RankLayout{atm, 1, ocean_rows};
  }
  static RankLayout grid(int atm, int px, int py) {
    return RankLayout{atm, px, py};
  }

  /// Throws foam::Error unless the layout is internally consistent, covers
  /// \p world_size exactly and fits the ocean grid (px <= nx, py <= ny).
  void validate(int world_size, const ocean::OceanConfig& ocean) const;

  /// Compact human-readable form, e.g. "8+2x4".
  std::string describe() const;

  bool operator==(const RankLayout&) const = default;
};

/// Options for run_coupled_parallel; every rank of the world communicator
/// must pass the same values.
struct ParallelRunOptions {
  /// Explicit rank layout (atmosphere ranks + 2-D ocean rank grid). When
  /// unset the driver derives RankLayout::rows(n_atm, world - n_atm) from
  /// the legacy n_atm field below.
  std::optional<RankLayout> layout;
  /// Legacy spelling: the first n_atm ranks host the atmosphere + coupler,
  /// the remaining ranks the ocean as one row block each (paper §5: e.g.
  /// 17 nodes = 16 atmosphere + 1 ocean). Ignored when layout is set.
  int n_atm = 1;
  /// Overlap the flux exchange with atmosphere computation (see the file
  /// comment): nonblocking forcing send + SST-reply receive, reply applied
  /// one exchange interval late. Off = blocking exchange, the reply is
  /// waited for inside the exchange (the paper's Fig. 2 idle band).
  bool overlap = false;
  /// Gather per-rank activity timelines into ParallelRunResult::timelines.
  bool capture_timelines = true;
  /// Telemetry session installed on every rank for the run: trace level
  /// (off / regions-only / full hierarchical spans) and span ring capacity.
  /// The flat-view setting is overridden by capture_timelines.
  telemetry::TelemetryOptions telemetry;
  /// MPI-semantics checking for the run (par/verify/verify.hpp): off by
  /// default unless FOAM_PAR_VERIFY is set. The driver installs it via
  /// Comm::set_verify and audits quiescence at the end of each coupled day
  /// and at run end (Comm::verify_quiescent).
  par::CommVerifyOptions verify = par::CommVerifyOptions::from_env();
  /// Checkpoint/restart policy; disabled unless a path prefix is set.
  CheckpointOptions checkpoint;
  /// Fault injection for resilience drills: kill or stall one rank at a
  /// chosen simulated-day boundary. Disarmed by default unless FOAM_FAULT
  /// is set (par/fault.hpp).
  par::FaultPlan fault = par::FaultPlan::from_env();
  /// Live observability: flight recorder, heartbeat/watchdog, sampling
  /// profiler, status feed (telemetry/observe.hpp). All off by default
  /// unless FOAM_OBSERVE / FOAM_OBSERVE_WATCHDOG / FOAM_TELEMETRY=profile
  /// are set.
  telemetry::ObservabilityOptions observe =
      telemetry::ObservabilityOptions::from_env();
};

/// Run the coupled model SPMD on \p world. Must be called by every rank of
/// the communicator with identical \p opts. The result (with gathered
/// timelines, if enabled) is returned on every rank.
ParallelRunResult run_coupled_parallel(par::Comm& world,
                                       const ParallelRunOptions& opts,
                                       const FoamConfig& cfg, double days);

/// Deprecated positional spelling; forwards to the options overload with
/// the blocking exchange and timeline capture on (the historic behaviour).
[[deprecated("pass ParallelRunOptions instead of a positional n_atm")]]
inline ParallelRunResult run_coupled_parallel(par::Comm& world, int n_atm,
                                              const FoamConfig& cfg,
                                              double days) {
  ParallelRunOptions opts;
  opts.n_atm = n_atm;
  return run_coupled_parallel(world, opts, cfg, days);
}

}  // namespace foam
