#include "foam/coupled.hpp"

#include <cmath>
#include <sstream>

#include "base/constants.hpp"
#include "base/logging.hpp"
#include "data/earth.hpp"
#include "foam/checkpoint.hpp"

namespace foam {

namespace c = foam::constants;

namespace {
constexpr int kTagForcing = 300;  // atm -> ocean forcing fields
}  // namespace

void FoamConfig::validate() const {
  FOAM_REQUIRE(atm.dt > 0.0, "atm.dt must be positive, got " << atm.dt);
  FOAM_REQUIRE(exchange_seconds > 0.0,
               "exchange_seconds must be positive, got " << exchange_seconds);
  FOAM_REQUIRE(ocean_accel > 0.0,
               "ocean_accel must be positive, got " << ocean_accel);
  const double steps = exchange_seconds / atm.dt;
  const auto whole = static_cast<double>(std::llround(steps));
  FOAM_REQUIRE(steps >= 1.0 - 1e-9 && std::abs(steps - whole) < 1e-9,
               "exchange_seconds (" << exchange_seconds
                                    << ") must be a whole multiple of the "
                                       "atmosphere step ("
                                    << atm.dt << ")");
}

void RankLayout::validate(int world_size,
                          const ocean::OceanConfig& ocean) const {
  FOAM_REQUIRE(atm_ranks >= 1,
               "rank layout needs at least one atmosphere rank, got "
               "atm_ranks=" << atm_ranks);
  FOAM_REQUIRE(ocean_px >= 1 && ocean_py >= 1,
               "rank layout " << describe() << " leaves the ocean without "
                              "ranks (the atmosphere takes " << atm_ranks
                              << " of the " << world_size
                              << "-rank world); the coupled driver needs at "
                                 "least one ocean rank");
  FOAM_REQUIRE(this->world_size() == world_size,
               "rank layout " << describe() << " needs "
                              << this->world_size()
                              << " ranks but the world has " << world_size);
  FOAM_REQUIRE(ocean_px <= ocean.nx && ocean_py <= ocean.ny,
               "rank layout " << describe() << ": ocean rank grid "
                              << ocean_px << "x" << ocean_py
                              << " does not fit the " << ocean.nx << "x"
                              << ocean.ny << " ocean grid");
}

std::string RankLayout::describe() const {
  std::ostringstream s;
  s << atm_ranks << "+" << ocean_px << "x" << ocean_py;
  return s.str();
}

CoupledFoam::CoupledFoam(const FoamConfig& cfg)
    : cfg_(cfg),
      ogrid_(cfg.ocean.nx, cfg.ocean.ny, ocean::OceanConfig::kStandardLatMax),
      bathy_(data::bathymetry(ogrid_)),
      omask_(data::ocean_mask(ogrid_)) {
  cfg_.validate();
  atm_ = std::make_unique<atm::AtmosphereModel>(cfg_.atm);
  ocean_ = std::make_unique<ocean::OceanModel>(cfg_.ocean, ogrid_, bathy_);
  // The ocean model may bury boundary rows; use its mask.
  for (int j = 0; j < ogrid_.nlat(); ++j)
    for (int i = 0; i < ogrid_.nlon(); ++i)
      omask_(i, j) = ocean_->levels()(i, j) > 0 ? 1 : 0;
  coupler_ = std::make_unique<coupler::Coupler>(atm_->grid(), ogrid_, omask_);
  atm_->init_default();
  ocean_->init_climatology();
  atm_->set_surface(coupler_->make_atm_surface(ocean_->sst()));
}

void CoupledFoam::exchange() {
  const int steps = std::max(1, atm_->accumulated_steps());
  atm::FluxFields mean = atm_->accumulated_fluxes();
  const double inv = 1.0 / steps;
  for (Field2Dd* f : {&mean.sw_sfc, &mean.lw_down, &mean.sensible,
                      &mean.latent, &mean.evaporation, &mean.rain,
                      &mean.snow, &mean.taux, &mean.tauy})
    *f *= inv;

  const Field2Dd sst = ocean_->sst();
  const Field2Dd frazil = ocean_->drain_frazil();
  const auto forcing = coupler_->make_ocean_forcing(mean, sst, frazil,
                                                    cfg_.exchange_seconds);
  ocean::OceanForcing of;
  of.wind_x = &forcing.taux;
  of.wind_y = &forcing.tauy;
  of.heat = &forcing.qnet;
  of.freshwater = &forcing.fw;
  of.ice = &coupler_->ice_fraction_o();
  ocean_->set_forcing(of);
  const double ocean_seconds = cfg_.exchange_seconds * cfg_.ocean_accel;
  ocean_->run_days(ocean_seconds / 86400.0);

  atm_->set_surface(coupler_->make_atm_surface(ocean_->sst()));
  atm_->reset_flux_accumulation();
}

void CoupledFoam::step() {
  atm_->step(now_);
  coupler_->step_land(atm_->last_fluxes(), cfg_.atm.dt);
  ++atm_steps_;
  now_.advance(static_cast<std::int64_t>(cfg_.atm.dt));
  const auto exchange_steps =
      static_cast<std::int64_t>(cfg_.exchange_seconds / cfg_.atm.dt);
  if (atm_steps_ % exchange_steps == 0) exchange();
}

void CoupledFoam::run_days(double days) {
  const auto n = static_cast<std::int64_t>(
      std::llround(days * 86400.0 / cfg_.atm.dt));
  for (std::int64_t s = 0; s < n; ++s) step();
}

void CoupledFoam::checkpoint(const std::string& path) const {
  HistoryWriter out(path);
  write_config_fingerprint(out, cfg_);
  out.write_scalar("foam.now_seconds", static_cast<double>(now_.seconds()));
  out.write_scalar("foam.atm_steps", static_cast<double>(atm_steps_));
  atm_->save_state(out, "foam.atm");
  ocean_->save_state(out, "foam.ocean");
  coupler_->save_state(out, "foam.coupler");
  // Explicit close: an ENOSPC/flush failure must throw here, not vanish in
  // the destructor, or the caller believes it holds a restart point.
  out.close();
}

void CoupledFoam::restore(const std::string& path) {
  HistoryReader in(path);
  check_config_fingerprint(in, cfg_, "'" + path + "'");
  now_ = ModelTime(static_cast<std::int64_t>(
      in.find("foam.now_seconds").data[0]));
  atm_steps_ =
      static_cast<std::int64_t>(in.find("foam.atm_steps").data[0]);
  atm_->load_state(in, "foam.atm");
  ocean_->load_state(in, "foam.ocean");
  coupler_->load_state(in, "foam.coupler");
  // Rebuild the atmosphere's surface from the restored coupled state.
  atm_->set_surface(coupler_->make_atm_surface(ocean_->sst()));
}

double CoupledFoam::work_points() const {
  return atm_->work_points() + ocean_->work_points();
}

// ---------------------------------------------------------------------------
// Parallel driver
// ---------------------------------------------------------------------------

namespace {

void send_field(par::Comm& comm, int dst, const Field2Dd& f) {
  // One copy into a fresh buffer, handed to the runtime by ownership; the
  // receiving side moves the same buffer into its field, so a field crosses
  // the exchange with a single copy (send_vec + recv_vec cost two).
  comm.isend_move(dst, kTagForcing, std::vector<double>(f.vec()));
}

void recv_field(par::Comm& comm, int src, Field2Dd& f) {
  std::vector<double> buf;
  comm.recv_vec(src, kTagForcing, buf);
  FOAM_REQUIRE(buf.size() == f.size(), "field size mismatch in exchange");
  f.vec() = std::move(buf);
}

/// Checkpoint the installed surface boundary condition verbatim. With
/// overlapped coupling the surface lags the newest delivered SST by one
/// exchange, so rebuilding it from the ocean state at restore time would
/// shift the lag — saving the installed fields keeps the resume bitwise.
void write_surface(HistoryWriter& out, const atm::SurfaceFields& sfc) {
  out.write("foam.sfc.tsurf", sfc.tsurf);
  out.write("foam.sfc.albedo", sfc.albedo);
  out.write("foam.sfc.roughness", sfc.roughness);
  out.write("foam.sfc.wetness", sfc.wetness);
  const auto as_series = [&](const std::string& name,
                             const Field2D<int>& f) {
    std::vector<double> buf(f.size());
    for (std::size_t n = 0; n < f.size(); ++n)
      buf[n] = static_cast<double>(f.vec()[n]);
    out.write_series(name, buf);
  };
  as_series("foam.sfc.is_ocean", sfc.is_ocean);
  as_series("foam.sfc.is_ice", sfc.is_ice);
}

atm::SurfaceFields read_surface(const HistoryReader& in, int nlon,
                                int nlat) {
  atm::SurfaceFields sfc(nlon, nlat);
  const auto load2 = [&](const std::string& name, Field2Dd& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(),
                 "checkpoint size mismatch in " << name);
    std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
  };
  load2("foam.sfc.tsurf", sfc.tsurf);
  load2("foam.sfc.albedo", sfc.albedo);
  load2("foam.sfc.roughness", sfc.roughness);
  load2("foam.sfc.wetness", sfc.wetness);
  const auto load_int = [&](const std::string& name, Field2D<int>& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(),
                 "checkpoint size mismatch in " << name);
    for (std::size_t n = 0; n < f.size(); ++n)
      f.vec()[n] = static_cast<int>(rec.data[n]);
  };
  load_int("foam.sfc.is_ocean", sfc.is_ocean);
  load_int("foam.sfc.is_ice", sfc.is_ice);
  return sfc;
}

/// Allgather variable-length per-rank double streams (timelines, traces,
/// metric samples): every rank ends up with every rank's stream.
std::vector<std::vector<double>> allgather_streams(
    par::Comm& world, const std::vector<double>& mine) {
  const double n_mine = static_cast<double>(mine.size());
  std::vector<double> all_counts(world.size());
  world.allgather(&n_mine, 1, all_counts.data());
  std::vector<int> counts(world.size());
  for (int r = 0; r < world.size(); ++r)
    counts[r] = static_cast<int>(all_counts[r]);
  std::vector<double> flat;
  world.gatherv(mine, flat, counts, 0);
  world.bcast_vec(flat, 0);
  std::vector<std::vector<double>> out(world.size());
  std::size_t off = 0;
  for (int r = 0; r < world.size(); ++r) {
    out[r].assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
                  flat.begin() + static_cast<std::ptrdiff_t>(off) +
                      counts[r]);
    off += static_cast<std::size_t>(counts[r]);
  }
  return out;
}

}  // namespace

ParallelRunResult run_coupled_parallel(par::Comm& world,
                                       const ParallelRunOptions& opts,
                                       const FoamConfig& cfg, double days) {
  cfg.validate();
  // Resolve the rank layout: explicit 2-D layout if given, otherwise the
  // legacy "first n_atm ranks are atmosphere, the rest one ocean row block
  // each" convention. Validation catches the classic footgun of n_atm
  // covering the whole world (0 ocean ranks) with a pointed message.
  const RankLayout layout =
      opts.layout.has_value()
          ? *opts.layout
          : RankLayout::rows(opts.n_atm, world.size() - opts.n_atm);
  layout.validate(world.size(), cfg.ocean);
  const int n_atm = layout.atm_ranks;
  const int n_ocean = layout.ocean_ranks();
  const bool is_atm = world.rank() < n_atm;
  world.set_verify(opts.verify);
  auto sub = world.split(is_atm ? 0 : 1, world.rank());
  FOAM_REQUIRE(sub != nullptr, "split failed");

  numerics::MercatorGrid ogrid(cfg.ocean.nx, cfg.ocean.ny,
                               ocean::OceanConfig::kStandardLatMax);
  const Field2Dd bathy = data::bathymetry(ogrid);

  // Per-rank telemetry session: region spans drive the flat Fig. 2 view
  // (timelines); FOAM_TRACE_SCOPE spans throughout the component stack are
  // recorded at TraceLevel::kFull; comm counters accumulate whenever the
  // session is installed.
  telemetry::TelemetryOptions topts = opts.telemetry;
  topts.record_flat = opts.capture_timelines;
  telemetry::Telemetry tel(topts);
  telemetry::ScopedSession session(tel);
  telemetry::Tracer& rec = tel.tracer();
  set_log_rank(world.rank());

  // Live observability (flight recorder / heartbeat / profiler / status
  // feed). Declared after the session so its destructor — which captures
  // this rank's live trace when unwinding an abort — still sees it.
  telemetry::ScopedRankObserver obs(
      opts.observe, world.rank(), world.size(),
      layout.describe() + (opts.overlap ? " overlap" : " blocking"), days);

  const auto exchange_steps =
      static_cast<std::int64_t>(cfg.exchange_seconds / cfg.atm.dt);
  const auto total_steps = static_cast<std::int64_t>(
      std::llround(days * 86400.0 / cfg.atm.dt));
  const std::int64_t n_exchanges = total_steps / exchange_steps;
  // Quiescence audit at every coupled-day boundary (all ranks hit the same
  // exchanges, so the collective call lines up). No-op when verify is off.
  const std::int64_t exchanges_per_day = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(86400.0 /
                                                cfg.exchange_seconds)));
  const auto day_boundary_audit = [&](std::int64_t ex) {
    if ((ex + 1) % exchanges_per_day == 0) world.verify_quiescent();
  };

  // --- checkpoint/restart + fault injection ------------------------------
  const CheckpointOptions& ckpt = opts.checkpoint;
  const std::int64_t ckpt_every =
      ckpt.enabled()
          ? std::max<std::int64_t>(1, std::llround(ckpt.every_days))
          : 0;
  par::FaultPlan fault = opts.fault;

  // Resume-from-latest: all ranks agree on the day through the pointer
  // file, validate the manifest against this run's shape, then each rank
  // loads its own shard below (after its models are constructed).
  const bool resuming = ckpt.enabled() && ckpt.resume;
  std::int64_t start_day = 0;
  if (resuming) {
    start_day = ckpt_latest_day(ckpt.path_prefix);
    const std::string mpath =
        ckpt_manifest_path(ckpt.path_prefix, start_day);
    const HistoryReader manifest(mpath);
    check_config_fingerprint(manifest, cfg, "'" + mpath + "'");
    const auto stamp = [&](const char* name) {
      return static_cast<int>(manifest.find(name).data[0]);
    };
    // Manifests written before the 2-D ocean decomposition stamped only
    // the atm/ocean split; treat those as 1 x n_ocean row layouts.
    RankLayout stored =
        RankLayout::rows(stamp("ckpt.n_atm"), stamp("ckpt.n_ocean"));
    if (manifest.has("ckpt.ocean_px"))
      stored = RankLayout::grid(stamp("ckpt.n_atm"), stamp("ckpt.ocean_px"),
                                stamp("ckpt.ocean_py"));
    FOAM_REQUIRE(stamp("ckpt.world_size") == world.size() &&
                     stored == layout,
                 "'" << mpath << "' was written by a " << stored.describe()
                     << "-rank run; this run is " << layout.describe());
    FOAM_REQUIRE(
        (stamp("ckpt.overlap") != 0) == opts.overlap,
        "'" << mpath << "' was written with overlap "
            << (stamp("ckpt.overlap") != 0 ? "on" : "off")
            << "; resuming in the other mode would not reproduce the "
               "uninterrupted run");
    FOAM_REQUIRE(start_day * exchanges_per_day < n_exchanges,
                 "latest checkpoint (day " << start_day
                                           << ") is at or past the end of a "
                                           << days << "-day run");
  }
  const std::int64_t start_ex = start_day * exchanges_per_day;

  // Day-boundary resilience hook, same order on every rank: the fault
  // drill first (a rank killed at day D leaves the previous checkpoint as
  // the latest restart point), then the checkpoint — per-rank crash-safe
  // shards, a barrier proving the set is complete, and only then the
  // manifest and the atomic latest-pointer update on world rank 0.
  const auto day_resilience =
      [&](std::int64_t ex,
          const std::function<void(HistoryWriter&)>& write_shard) {
        if ((ex + 1) % exchanges_per_day != 0) return;
        const std::int64_t day = (ex + 1) / exchanges_per_day;
        par::maybe_inject_fault(world, fault, static_cast<double>(day));
        if (ckpt_every == 0 || day % ckpt_every != 0) return;
        {
          FOAM_TRACE_SCOPE("ckpt.write");
          HistoryWriter out(
              ckpt_shard_path(ckpt.path_prefix, day, world.rank()));
          out.write_scalar("ckpt.day", static_cast<double>(day));
          write_config_fingerprint(out, cfg);
          write_layout_record(out, layout);
          write_shard(out);
          out.close();
          tel.metrics().counter("ckpt.writes").add();
          tel.metrics().counter("ckpt.bytes").add(out.bytes_written());
        }
        world.barrier();
        if (world.rank() == 0) {
          FOAM_TRACE_SCOPE("ckpt.manifest");
          HistoryWriter m(ckpt_manifest_path(ckpt.path_prefix, day));
          write_config_fingerprint(m, cfg);
          m.write_scalar("ckpt.day", static_cast<double>(day));
          m.write_scalar("ckpt.world_size",
                         static_cast<double>(world.size()));
          m.write_scalar("ckpt.n_atm", static_cast<double>(n_atm));
          m.write_scalar("ckpt.n_ocean", static_cast<double>(n_ocean));
          m.write_scalar("ckpt.ocean_px",
                         static_cast<double>(layout.ocean_px));
          m.write_scalar("ckpt.ocean_py",
                         static_cast<double>(layout.ocean_py));
          m.write_scalar("ckpt.overlap", opts.overlap ? 1.0 : 0.0);
          m.close();
          ckpt_write_latest(ckpt.path_prefix, day);
          tel.metrics().counter("ckpt.manifests").add();
          rec.instant("ckpt.complete");
        }
      };

  par::Stopwatch wall;
  rec.reset();
  Field2Dd final_sst;  // last gathered SST, filled on the ocean ranks

  if (is_atm) {
    atm::AtmosphereModel atm(cfg.atm, sub.get());
    // A serial ocean shell provides masks/initial SST for the coupler on
    // atmosphere rank 0 (state itself lives on the ocean ranks).
    std::unique_ptr<coupler::Coupler> coupler;
    Field2D<int> omask = data::ocean_mask(ogrid);
    Field2Dd sst_o(ogrid.nlon(), ogrid.nlat(), 0.0);
    Field2Dd frazil_o(ogrid.nlon(), ogrid.nlat(), 0.0);
    if (world.rank() == 0) {
      ocean::OceanModel shell(cfg.ocean, ogrid, bathy);
      for (int j = 0; j < ogrid.nlat(); ++j)
        for (int i = 0; i < ogrid.nlon(); ++i)
          omask(i, j) = shell.levels()(i, j) > 0 ? 1 : 0;
      shell.init_climatology();
      sst_o = shell.sst();
      coupler = std::make_unique<coupler::Coupler>(atm.grid(), ogrid, omask);
    }
    atm.init_default();
    if (resuming) {
      // Each rank restores exactly the memory it checkpointed (decomposed
      // state and the installed, possibly lagged, surface), so no surface
      // broadcast is needed — or wanted: the resume must not reorder any
      // communication relative to the uninterrupted run's remainder.
      FOAM_TRACE_SCOPE("ckpt.restore");
      const std::string spath =
          ckpt_shard_path(ckpt.path_prefix, start_day, world.rank());
      const HistoryReader in(spath);
      check_config_fingerprint(in, cfg, "'" + spath + "'");
      check_layout_record(in, layout, "'" + spath + "'");
      atm.load_state(in, "foam.atm");
      atm.set_surface(read_surface(in, cfg.atm.nlon, cfg.atm.nlat));
      if (world.rank() == 0) {
        coupler->load_state(in, "foam.coupler");
        const auto load2 = [&](const std::string& name, Field2Dd& f) {
          const auto& rec2 = in.find(name);
          FOAM_REQUIRE(rec2.data.size() == f.size(),
                       "checkpoint size mismatch in " << name);
          std::copy(rec2.data.begin(), rec2.data.end(), f.vec().begin());
        };
        load2("foam.sst_o", sst_o);
        load2("foam.frazil_o", frazil_o);
      }
      tel.metrics().counter("ckpt.resumes").add();
    } else {
      // Initial surface, broadcast to all atmosphere ranks.
      atm::SurfaceFields sfc(cfg.atm.nlon, cfg.atm.nlat);
      if (world.rank() == 0) sfc = coupler->make_atm_surface(sst_o);
      for (Field2Dd* f :
           {&sfc.tsurf, &sfc.albedo, &sfc.roughness, &sfc.wetness})
        sub->bcast_bytes(f->data(), f->size() * sizeof(double), 0);
      sub->bcast_bytes(sfc.is_ocean.data(),
                       sfc.is_ocean.size() * sizeof(int), 0);
      sub->bcast_bytes(sfc.is_ice.data(), sfc.is_ice.size() * sizeof(int),
                       0);
      atm.set_surface(sfc);
    }

    // In-flight SST/frazil reply (rank 0, overlap mode): the receive is
    // posted right after the forcing send and completed just before the
    // *next* forcing computation, so the ocean call runs concurrently with
    // the next atmosphere interval.
    bool reply_pending = false;
    std::vector<double> sst_buf, frazil_buf;
    par::Request sst_req, frazil_req;
    const auto wait_reply = [&]() {
      if (!reply_pending) return;
      rec.begin_region(par::Region::kCommWait);
      {
        FOAM_TRACE_SCOPE("exchange.sst_reply_wait");
        world.wait(sst_req);
        world.wait(frazil_req);
      }
      rec.end_region();
      FOAM_REQUIRE(sst_buf.size() == sst_o.size() &&
                       frazil_buf.size() == frazil_o.size(),
                   "field size mismatch in exchange");
      sst_o.vec() = std::move(sst_buf);
      frazil_o.vec() = std::move(frazil_buf);
      reply_pending = false;
    };

    // Checkpoint shard for an atmosphere rank. Draining the in-flight
    // overlap reply first is value-neutral: wait_reply only copies the
    // already-sent buffers into sst_o/frazil_o, so a checkpointing run
    // stays bitwise identical to a non-checkpointing one — and the resumed
    // run starts with the reply applied and nothing in flight.
    const auto write_shard = [&](HistoryWriter& out) {
      if (world.rank() == 0) wait_reply();
      atm.save_state(out, "foam.atm");
      write_surface(out, atm.surface());
      if (world.rank() == 0) {
        coupler->save_state(out, "foam.coupler");
        out.write("foam.sst_o", sst_o);
        out.write("foam.frazil_o", frazil_o);
      }
    };

    ModelTime now(start_ex * exchange_steps *
                  static_cast<std::int64_t>(cfg.atm.dt));
    double atm_cpu = 0.0;
    for (std::int64_t ex = start_ex; ex < n_exchanges; ++ex) {
      const double cpu0 = par::thread_cpu_now();
      for (std::int64_t s = 0; s < exchange_steps; ++s) {
        rec.begin_region(par::Region::kAtmosphere);
        atm.step(now);
        now.advance(static_cast<std::int64_t>(cfg.atm.dt));
        rec.end_region();
      }
      atm_cpu += par::thread_cpu_now() - cpu0;
      // --- exchange: gather fluxes, compute forcing, talk to the ocean ---
      rec.begin_region(par::Region::kCoupler);
      const int steps = std::max(1, atm.accumulated_steps());
      atm::FluxFields mean = atm.accumulated_fluxes();
      {
        FOAM_TRACE_SCOPE("exchange.flux_reduce");
        const double inv = 1.0 / steps;
        for (Field2Dd* f : {&mean.sw_sfc, &mean.lw_down, &mean.sensible,
                            &mean.latent, &mean.evaporation, &mean.rain,
                            &mean.snow, &mean.taux, &mean.tauy}) {
          *f *= inv;
          // Reduce the row-decomposed accumulations to rank 0 (each rank
          // contributed only its rows; others are zero).
          std::vector<double> out(f->size());
          sub->reduce(std::span<const double>(f->data(), f->size()),
                      std::span<double>(out), par::ReduceOp::kSum, 0);
          if (sub->rank() == 0) std::copy(out.begin(), out.end(), f->data());
        }
      }
      rec.end_region();
      if (world.rank() == 0) {
        // The forcing uses the newest SST the ocean has delivered: with
        // overlap on, that is the reply launched at the previous exchange,
        // completed here — by now usually already arrived, so the wait is
        // short (the whole point of the overlap).
        wait_reply();
        rec.begin_region(par::Region::kCoupler);
        coupler->step_land(mean, cfg.exchange_seconds);
        const auto forcing = coupler->make_ocean_forcing(
            mean, sst_o, frazil_o, cfg.exchange_seconds);
        {
          // Ship forcing to the ocean lead rank (buffered sends).
          FOAM_TRACE_SCOPE("exchange.forcing_send");
          send_field(world, n_atm, forcing.taux);
          send_field(world, n_atm, forcing.tauy);
          send_field(world, n_atm, forcing.qnet);
          send_field(world, n_atm, forcing.fw);
          send_field(world, n_atm, coupler->ice_fraction_o());
        }
        rec.end_region();
        if (opts.overlap) {
          sst_req = world.irecv_vec(n_atm, kTagForcing, sst_buf);
          frazil_req = world.irecv_vec(n_atm, kTagForcing, frazil_buf);
          reply_pending = true;
        } else {
          // Blocking exchange: sit out the whole ocean call here.
          rec.begin_region(par::Region::kCommWait);
          recv_field(world, n_atm, sst_o);
          recv_field(world, n_atm, frazil_o);
          rec.end_region();
        }
      }
      rec.begin_region(world.rank() == 0 ? par::Region::kCoupler
                                         : par::Region::kIdle);
      {
        FOAM_TRACE_SCOPE("exchange.surface_bcast");
        atm::SurfaceFields sfc(cfg.atm.nlon, cfg.atm.nlat);
        if (world.rank() == 0) sfc = coupler->make_atm_surface(sst_o);
        // Broadcast the new surface over the atmosphere ranks (non-root
        // ranks are effectively waiting here).
        for (Field2Dd* f :
             {&sfc.tsurf, &sfc.albedo, &sfc.roughness, &sfc.wetness})
          sub->bcast_bytes(f->data(), f->size() * sizeof(double), 0);
        sub->bcast_bytes(sfc.is_ocean.data(),
                         sfc.is_ocean.size() * sizeof(int), 0);
        sub->bcast_bytes(sfc.is_ice.data(), sfc.is_ice.size() * sizeof(int),
                         0);
        atm.set_surface(sfc);
        atm.reset_flux_accumulation();
      }
      rec.end_region();
      day_boundary_audit(ex);
      // Heartbeat every exchange; publish the trace snapshot once per day
      // (before the resilience hook, so an injected stall or kill there is
      // observed against a fresh beat).
      if (obs) {
        obs->beat(static_cast<double>(ex + 1) /
                  static_cast<double>(exchanges_per_day));
        if ((ex + 1) % exchanges_per_day == 0) obs->publish_self();
      }
      day_resilience(ex, write_shard);
    }
    // Drain the reply still in flight after the last interval so the
    // ocean's sends are all consumed before the timeline gather.
    if (world.rank() == 0) wait_reply();
    tel.metrics().gauge("driver.atm_cpu_seconds").set(atm_cpu);
  } else {
    // Ocean ranks: the ocean sub-communicator decomposes over the layout's
    // px * py rank grid (px = 1 is the historic row decomposition).
    ocean::OceanModel ocn(cfg.ocean, ogrid, bathy, sub.get(),
                          layout.ocean_px);
    ocn.init_climatology();
    if (resuming) {
      FOAM_TRACE_SCOPE("ckpt.restore");
      const std::string spath =
          ckpt_shard_path(ckpt.path_prefix, start_day, world.rank());
      const HistoryReader in(spath);
      check_config_fingerprint(in, cfg, "'" + spath + "'");
      check_layout_record(in, layout, "'" + spath + "'");
      ocn.load_state(in, "foam.ocean");
      tel.metrics().counter("ckpt.resumes").add();
    }
    // A shard holds this rank's full-size arrays (owned rows valid), so a
    // restore reproduces the rank's exact memory, decomposition included.
    const auto write_shard = [&](HistoryWriter& out) {
      ocn.save_state(out, "foam.ocean");
    };
    Field2Dd taux(ogrid.nlon(), ogrid.nlat(), 0.0), tauy(taux), qnet(taux),
        fw(taux), icef(taux);
    ocean::OceanForcing forcing;
    forcing.wind_x = &taux;
    forcing.wind_y = &tauy;
    forcing.heat = &qnet;
    forcing.freshwater = &fw;
    forcing.ice = &icef;
    double ocean_cpu = 0.0;
    for (std::int64_t ex = start_ex; ex < n_exchanges; ++ex) {
      rec.begin_region(par::Region::kCommWait);
      if (sub->rank() == 0 && world.rank() == n_atm) {
        FOAM_TRACE_SCOPE("exchange.forcing_recv");
        recv_field(world, 0, taux);
        recv_field(world, 0, tauy);
        recv_field(world, 0, qnet);
        recv_field(world, 0, fw);
        recv_field(world, 0, icef);
      }
      rec.end_region();
      // Share forcing across ocean ranks.
      rec.begin_region(par::Region::kIdle);
      for (Field2Dd* f : {&taux, &tauy, &qnet, &fw, &icef})
        sub->bcast_bytes(f->data(), f->size() * sizeof(double), 0);
      rec.end_region();
      rec.begin_region(par::Region::kOcean);
      const double cpu0 = par::thread_cpu_now();
      ocn.set_forcing(forcing);
      ocn.run_days(cfg.exchange_seconds * cfg.ocean_accel / 86400.0);
      Field2Dd sst = ocn.gather(ocn.sst());
      Field2Dd frazil = ocn.gather(ocn.drain_frazil());
      if (world.rank() == n_atm) {
        // The gathered grids leave by ownership handoff (no copy either
        // side) — but final_sst, the layout-independence observable, must
        // be kept from the last exchange before its buffer goes.
        if (ex + 1 == n_exchanges) final_sst = sst;
        world.isend_move(0, kTagForcing, std::move(sst.vec()));
        world.isend_move(0, kTagForcing, std::move(frazil.vec()));
      } else if (ex + 1 == n_exchanges) {
        final_sst = std::move(sst);
      }
      ocean_cpu += par::thread_cpu_now() - cpu0;
      rec.end_region();
      day_boundary_audit(ex);
      if (obs) {
        obs->beat(static_cast<double>(ex + 1) /
                  static_cast<double>(exchanges_per_day));
        if ((ex + 1) % exchanges_per_day == 0) obs->publish_self();
      }
      day_resilience(ex, write_shard);
    }
    tel.metrics().gauge("driver.ocean_cpu_seconds").set(ocean_cpu);
  }

  // This rank's loop is done: final snapshot publish + watchdog opt-out
  // before the potentially-blocking final audit.
  if (obs) obs->finish_rank();

  // Final drain audit: by run end every message ever sent must have been
  // received and every request completed (collective; no-op when off).
  world.verify_quiescent();

  // Surface ring-buffer drops instead of silently truncating traces; the
  // counter lands in the metric gather below so drivers and tests see it.
  if (const std::uint64_t dropped_spans = rec.dropped(); dropped_spans > 0) {
    tel.metrics().counter("telemetry.dropped_spans").add(dropped_spans);
    FOAM_LOG_WARN << "telemetry: span ring dropped " << dropped_spans
                  << " span(s) on rank " << world.rank()
                  << "; oldest spans are missing from the trace (raise "
                     "TelemetryOptions::max_spans)";
  }

  ParallelRunResult result;
  result.wall_seconds = wall.seconds();
  result.simulated_seconds =
      static_cast<double>(n_exchanges - start_ex) * cfg.exchange_seconds;
  result.verify_findings =
      world.verifier().enabled()
          ? static_cast<std::int64_t>(world.verifier().finding_count())
          : -1;
  result.final_sst = std::move(final_sst);

  // Gather the per-rank telemetry to every rank: flat timelines (Fig. 2),
  // hierarchical traces (kFull), and metric samples. Each stream is
  // validated on decode — the bytes crossed rank boundaries.
  if (opts.capture_timelines) {
    const auto streams = allgather_streams(world, rec.flat().serialize());
    result.timelines.resize(world.size());
    for (int r = 0; r < world.size(); ++r)
      result.timelines[r] = par::ActivityRecorder::deserialize(
          streams[r].data(), streams[r].size());
  }
  if (topts.level == telemetry::TraceLevel::kFull) {
    const auto streams =
        allgather_streams(world, telemetry::serialize_trace(rec.trace()));
    result.traces.resize(world.size());
    for (int r = 0; r < world.size(); ++r)
      result.traces[r] = telemetry::deserialize_trace(streams[r].data(),
                                                      streams[r].size());
  }
  if (topts.level != telemetry::TraceLevel::kOff) {
    const auto streams =
        allgather_streams(world, telemetry::serialize_samples(tel.snapshot()));
    result.metrics.resize(world.size());
    for (int r = 0; r < world.size(); ++r)
      result.metrics[r] = telemetry::deserialize_samples(streams[r].data(),
                                                         streams[r].size());
  }

  if (obs && opts.observe.profile) {
    // Every rank has published its final snapshot (finish_rank above), so
    // the sample words resolve against complete name tables.
    world.barrier();
    result.profile = obs->profile_snapshot();
    result.profile_interval_seconds = obs->profile_effective_interval();
  }
  if (obs && world.rank() == 0)
    obs->finish_run(static_cast<double>(n_exchanges) /
                    static_cast<double>(exchanges_per_day));
  return result;
}

}  // namespace foam
