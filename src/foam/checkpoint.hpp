#pragma once

/// \file checkpoint.hpp
/// Shared checkpoint machinery for both coupled drivers: file naming, the
/// resume-from-latest pointer, and the config fingerprint that keeps a
/// restart from silently loading state produced under a different model
/// configuration.
///
/// On-disk layout (all files are crash-safe HistoryWriter files):
///   serial driver    <prefix>.day<D>.foam
///   parallel driver  <prefix>.day<D>.rank<R>.foam     one shard per rank
///                    <prefix>.day<D>.manifest.foam    written by world
///                        rank 0 after a barrier, so its existence proves
///                        the complete shard set landed
///   both             <prefix>.latest.foam             atomically rewritten
///                        pointer to the newest complete checkpoint day
///
/// A reader that starts from the latest pointer therefore never sees a
/// half-written checkpoint: shards rename into place individually, the
/// manifest only after every shard, the pointer only after the manifest.

#include <cstdint>
#include <string>

#include "base/history.hpp"

namespace foam {

struct FoamConfig;
struct RankLayout;

std::string ckpt_serial_path(const std::string& prefix, std::int64_t day);
std::string ckpt_shard_path(const std::string& prefix, std::int64_t day,
                            int rank);
std::string ckpt_manifest_path(const std::string& prefix, std::int64_t day);
std::string ckpt_latest_path(const std::string& prefix);

/// Day stored in the latest-pointer file; throws foam::Error when the
/// pointer is missing or corrupt.
std::int64_t ckpt_latest_day(const std::string& prefix);

/// Atomically (re)write the latest pointer to \p day.
void ckpt_write_latest(const std::string& prefix, std::int64_t day);

/// Stamp the configuration fingerprint (grid dimensions, time steps,
/// exchange interval, ocean acceleration) into a checkpoint.
void write_config_fingerprint(HistoryWriter& out, const FoamConfig& cfg);

/// Verify a checkpoint's fingerprint against \p cfg; throws foam::Error
/// with a per-entry diff (expected vs stored) on mismatch, and a pointed
/// message when the record is absent (pre-fingerprint or foreign file).
/// \p what names the file in diagnostics.
void check_config_fingerprint(const HistoryReader& in, const FoamConfig& cfg,
                              const std::string& what);

/// Stamp the run's rank layout (atmosphere ranks + ocean rank grid) into a
/// parallel-driver shard. A shard holds one rank's decomposed memory, so
/// restoring it under a different layout would scatter state across the
/// wrong ranks — the layout is part of the shard's identity.
void write_layout_record(HistoryWriter& out, const RankLayout& layout);

/// Verify a shard's rank-layout record against this run's \p layout;
/// throws foam::Error on mismatch or when the record is absent. \p what
/// names the file in diagnostics.
void check_layout_record(const HistoryReader& in, const RankLayout& layout,
                         const std::string& what);

}  // namespace foam
