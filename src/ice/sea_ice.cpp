#include "ice/sea_ice.hpp"

#include <algorithm>
#include <cmath>

#include "base/constants.hpp"

namespace foam::ice {

namespace c = foam::constants;

SeaIceModel::SeaIceModel(const numerics::MercatorGrid& grid,
                         const Field2D<int>& ocean_mask, IceConfig cfg)
    : grid_(grid),
      mask_(ocean_mask),
      cfg_(cfg),
      thickness_(grid.nlon(), grid.nlat(), 0.0),
      fraction_(grid.nlon(), grid.nlat(), 0.0),
      tsurf_(grid.nlon(), grid.nlat(), c::t_melt),
      fw_accum_(grid.nlon(), grid.nlat(), 0.0) {
  FOAM_REQUIRE(ocean_mask.nx() == grid.nlon() &&
                   ocean_mask.ny() == grid.nlat(),
               "ocean mask shape");
}

void SeaIceModel::step(const Field2Dd& sst, const Field2Dd& frazil_heat,
                       const Field2Dd& net_sfc_flux, double dt) {
  const double rho_l = c::rho_fresh_water * c::latent_fus;  // J/m^3 of ice
  for (int j = 0; j < grid_.nlat(); ++j) {
    for (int i = 0; i < grid_.nlon(); ++i) {
      if (mask_(i, j) == 0) continue;
      double h = thickness_(i, j);

      // --- growth from the ocean freeze clamp -------------------------
      if (frazil_heat(i, j) > 0.0) {
        const double grow = frazil_heat(i, j) / rho_l;
        if (h <= 0.0) {
          // New ice: the paper treats formation as a 2 m flux of water out
          // of the ocean (salinity forcing); thermodynamic thickness starts
          // at h_initial.
          fw_accum_(i, j) -= c::ice_formation_flux_m;
          h = cfg_.h_initial;
        }
        h = std::min(cfg_.h_max, h + grow);
        fw_accum_(i, j) -= grow * c::rho_fresh_water / c::rho_fresh_water *
                           0.0;  // frazil growth itself tracked via clamp
      }

      // --- surface melt / conductive growth ---------------------------
      if (h > 0.0) {
        // Conductive flux through the slab between the ocean (-1.92 C) and
        // the ice surface; the surface temperature balances conduction
        // against the net atmospheric flux.
        const double t_bot = c::t_melt + c::sea_ice_freeze_c;
        const double cond = cfg_.conductivity / std::max(0.1, h);
        // Energy balance: net_sfc_flux + cond*(t_bot - tsurf) = 0 when the
        // surface is below melting; otherwise it melts.
        double ts = t_bot + net_sfc_flux(i, j) / cond;
        if (ts > c::t_melt) {
          ts = c::t_melt;
          const double melt_flux =
              net_sfc_flux(i, j) + cond * (t_bot - c::t_melt);
          if (melt_flux > 0.0) {
            const double melt = melt_flux * dt / rho_l;
            const double melted = std::min(h, melt);
            h -= melted;
            fw_accum_(i, j) += melted;  // meltwater back to the ocean
            if (h <= 0.0) {
              // Full melt also returns the formation flux.
              fw_accum_(i, j) += c::ice_formation_flux_m;
              h = 0.0;
            }
          }
        }
        tsurf_(i, j) = ts;
      } else if (sst(i, j) <= c::sea_ice_freeze_c + 0.01 &&
                 net_sfc_flux(i, j) < -5.0) {
        // Freezing conditions without frazil bookkeeping: start a thin
        // floe so polar cells ice over in deep winter.
        fw_accum_(i, j) -= c::ice_formation_flux_m;
        h = cfg_.h_initial;
        tsurf_(i, j) = c::t_melt + c::sea_ice_freeze_c;
      } else {
        tsurf_(i, j) = c::t_melt + std::max(sst(i, j), c::sea_ice_freeze_c);
      }

      thickness_(i, j) = h;
      fraction_(i, j) = std::clamp(h / 1.0, 0.0, 1.0);
    }
  }
}

void SeaIceModel::save_state(HistoryWriter& out,
                             const std::string& prefix) const {
  out.write(prefix + ".thickness", thickness_);
  out.write(prefix + ".fraction", fraction_);
  out.write(prefix + ".tsurf", tsurf_);
  out.write(prefix + ".fw", fw_accum_);
}

void SeaIceModel::load_state(const HistoryReader& in,
                             const std::string& prefix) {
  auto load = [&](const std::string& name, Field2Dd& f) {
    const auto& rec = in.find(name);
    FOAM_REQUIRE(rec.data.size() == f.size(), "checkpoint size " << name);
    std::copy(rec.data.begin(), rec.data.end(), f.vec().begin());
  };
  load(prefix + ".thickness", thickness_);
  load(prefix + ".fraction", fraction_);
  load(prefix + ".tsurf", tsurf_);
  load(prefix + ".fw", fw_accum_);
}

Field2Dd SeaIceModel::drain_freshwater_flux() {
  Field2Dd out = fw_accum_;
  fw_accum_.fill(0.0);
  return out;
}

}  // namespace foam::ice
