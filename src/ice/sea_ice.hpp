#pragma once

/// \file sea_ice.hpp
/// Thermodynamic sea ice (paper §4.3).
///
/// "The temperature of the sea ice is determined by treating it as another
/// soil type. The sea surface may continue to lose heat by conduction with
/// the lowest ice layer so a clamp on temperature is imposed by the ocean
/// model at -1.92 degrees Celsius. Sea ice roughness and albedos are
/// prescribed. For the hydrologic cycle, the formation of sea ice is
/// treated as a flux of 2 m of water out of the ocean. The stress between
/// the ice and the atmosphere is arbitrarily divided by 15 before passing
/// to the ocean model." The paper calls this representation crude and a
/// priority for replacement; this module reproduces that crude scheme.

#include "base/field.hpp"
#include "base/history.hpp"
#include "numerics/grid.hpp"

namespace foam::ice {

struct IceConfig {
  double albedo = 0.65;
  double roughness = 5.0e-4;    ///< [m]
  double conductivity = 2.2;    ///< [W/(m K)]
  double h_initial = 0.5;       ///< thickness of newly formed ice [m]
  double h_max = 4.0;           ///< cap [m]
};

class SeaIceModel {
 public:
  SeaIceModel(const numerics::MercatorGrid& grid,
              const Field2D<int>& ocean_mask, IceConfig cfg = {});

  /// One thermodynamic step.
  ///   sst          — ocean surface temperature [C]
  ///   frazil_heat  — heat deficit from the ocean's -1.92 C clamp [J/m^2]
  ///                  accumulated since the last call (grows ice)
  ///   net_sfc_flux — net atmosphere-to-surface energy flux over ice
  ///                  [W/m^2] (melts or thickens ice from above)
  void step(const Field2Dd& sst, const Field2Dd& frazil_heat,
            const Field2Dd& net_sfc_flux, double dt);

  /// Ice fraction per ocean cell in [0, 1].
  const Field2Dd& fraction() const { return fraction_; }
  /// Mean thickness over the ice-covered part [m].
  const Field2Dd& thickness() const { return thickness_; }
  /// Ice surface (skin) temperature [K], from the conductive balance.
  const Field2Dd& tsurf() const { return tsurf_; }

  /// Freshwater flux to the ocean from freezing/melting since the last
  /// drain [m of liquid water, negative = water removed from the ocean;
  /// includes the paper's 2 m formation flux].
  Field2Dd drain_freshwater_flux();

  const IceConfig& config() const { return cfg_; }

  /// Checkpoint support.
  void save_state(HistoryWriter& out, const std::string& prefix) const;
  void load_state(const HistoryReader& in, const std::string& prefix);

 private:
  const numerics::MercatorGrid& grid_;
  Field2D<int> mask_;
  IceConfig cfg_;
  Field2Dd thickness_;
  Field2Dd fraction_;
  Field2Dd tsurf_;
  Field2Dd fw_accum_;
};

}  // namespace foam::ice
