// Figure 4 — two-basin variability.
//
// The paper: "a pattern (obtained by VARIMAX rotation of empirical
// orthogonal function decomposition) that accounts for fully 15 percent of
// 60 month low-pass filtered variance in sea surface temperature",
// correlating the North Atlantic and North Pacific.
//
// Pipeline reproduced here: coupled run -> periodic SST snapshots ->
// anomalies -> low-pass -> area-weighted EOF -> VARIMAX -> leading-mode
// explained variance and the N.Atlantic/N.Pacific loading relationship.
// The run is a reduced-resolution, ocean-accelerated configuration
// (DESIGN.md: the 500-year production run is scaled down; the statistical
// machinery and the coupled noise pathway are identical).

#include <cmath>
#include <cstdio>
#include <vector>

#include "base/constants.hpp"
#include "foam/coupled.hpp"
#include "par/timers.hpp"
#include "stats/eof.hpp"
#include "stats/lowpass.hpp"

using namespace foam;
namespace c = foam::constants;

int main(int argc, char** argv) {
  const int n_samples = argc > 1 ? std::atoi(argv[1]) : 72;
  const double days_per_sample = argc > 2 ? std::atof(argv[2]) : 3.0;

  std::printf("=== Figure 4: VARIMAX-rotated EOF of low-passed SST ===\n");
  FoamConfig cfg = FoamConfig::testing();
  cfg.ocean = ocean::OceanConfig::testing(64, 64, 8);
  cfg.ocean_accel = 6.0;  // each coupled day ~ 6 ocean days
  CoupledFoam model(cfg);
  model.run_days(10.0);  // spin-up

  const auto& grid = model.ocean_grid();
  const auto& mask = model.ocean_mask();

  // Retain northern-hemisphere ocean points (the two-basin analysis
  // region) with sqrt(area) weights.
  std::vector<int> pi, pj;
  std::vector<double> weight;
  std::vector<int> basin;  // 0 = Pacific, 1 = Atlantic, -1 = other
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) * c::rad2deg;
    if (lat < 20.0 || lat > 65.0) continue;
    for (int i = 0; i < grid.nlon(); ++i) {
      if (mask(i, j) == 0) continue;
      const double lon = grid.lon(i) * c::rad2deg;
      pi.push_back(i);
      pj.push_back(j);
      weight.push_back(std::sqrt(grid.cell_area(j)));
      int b = -1;
      if (lon > 140.0 && lon < 230.0) b = 0;  // North Pacific
      if (lon > 285.0 && lon < 350.0) b = 1;  // North Atlantic
      basin.push_back(b);
    }
  }
  const int npoint = static_cast<int>(pi.size());
  std::printf("analysis points: %d northern-ocean cells "
              "(%d N.Pac, %d N.Atl)\n",
              npoint,
              static_cast<int>(std::count(basin.begin(), basin.end(), 0)),
              static_cast<int>(std::count(basin.begin(), basin.end(), 1)));

  // Collect the SST record.
  par::Stopwatch sw;
  std::vector<double> record(static_cast<std::size_t>(n_samples) * npoint);
  for (int t = 0; t < n_samples; ++t) {
    model.run_days(days_per_sample);
    const Field2Dd sst = model.sst();
    for (int p = 0; p < npoint; ++p)
      record[static_cast<std::size_t>(t) * npoint + p] = sst(pi[p], pj[p]);
  }
  std::printf("record: %d samples x %.0f coupled days (x%.0f ocean accel) "
              "in %.0fs wall\n",
              n_samples, days_per_sample, cfg.ocean_accel, sw.seconds());

  // Anomalies, then the paper's low-pass (cutoff = 1/5 of the record in
  // sample units, the scaled analogue of 60-month filtering of monthly
  // data over 25+ years).
  // Remove the equilibration drift: the paper analyzed an equilibrated
  // 500-year run; our scaled run still trends, and the trend would
  // masquerade as the leading mode.
  stats::detrend_columns(record, n_samples, npoint);
  stats::compute_anomalies(record, n_samples, npoint);
  const double cutoff = n_samples / 5.0;
  const int half = static_cast<int>(cutoff);
  const auto w = stats::lanczos_lowpass_weights(cutoff, half);
  const int n_filtered = n_samples - 2 * half;
  std::vector<double> filtered(static_cast<std::size_t>(n_filtered) * npoint);
  for (int p = 0; p < npoint; ++p) {
    std::vector<double> series(n_samples);
    for (int t = 0; t < n_samples; ++t)
      series[t] = record[static_cast<std::size_t>(t) * npoint + p];
    const auto f = stats::apply_symmetric_filter(series, w);
    for (int t = 0; t < n_filtered; ++t)
      filtered[static_cast<std::size_t>(t) * npoint + p] = f[t];
  }
  std::printf("low-pass: cutoff %.0f samples, %d filtered samples retained\n",
              cutoff, n_filtered);

  const int nmodes = 5;
  const auto eof =
      stats::eof_analysis(filtered, n_filtered, npoint, weight, nmodes);
  const auto rot = stats::varimax(eof, 3);

  std::printf("\nEOF explained variance: ");
  for (int k = 0; k < nmodes; ++k)
    std::printf("%5.1f%% ", 100.0 * eof.variance_fraction[k]);
  std::printf("\nVARIMAX factors       : ");
  for (int k = 0; k < 3; ++k)
    std::printf("%5.1f%% ", 100.0 * rot.variance_fraction[k]);
  std::printf("\n(paper: leading rotated pattern ~15%% of low-passed "
              "variance)\n");

  // Two-basin structure of the leading rotated factor: mean loading per
  // basin and their relationship (Fig. 4a), plus the factor's time series
  // (Fig. 4b).
  for (int k = 0; k < 2; ++k) {
    double pac = 0.0, atl = 0.0;
    int np = 0, na = 0;
    for (int p = 0; p < npoint; ++p) {
      if (basin[p] == 0) {
        pac += rot.loadings[k][p];
        ++np;
      } else if (basin[p] == 1) {
        atl += rot.loadings[k][p];
        ++na;
      }
    }
    pac /= std::max(1, np);
    atl /= std::max(1, na);
    std::printf("factor %d: mean loading N.Pac %+.3e, N.Atl %+.3e "
                "(two-basin %s)\n",
                k, pac, atl,
                pac * atl != 0.0 ? (pac * atl > 0 ? "in phase" : "out of phase")
                                 : "n/a");
  }
  std::printf("factor 0 time series (normalized): ");
  for (int t = 0; t < n_filtered; t += std::max(1, n_filtered / 12))
    std::printf("%+.2f ", rot.scores[0][t]);
  std::printf("\n");
  return 0;
}
