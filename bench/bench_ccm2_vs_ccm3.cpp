// §6 — "Results and Refinements": CCM2 vs CCM3 physics.
//
//   "Initial simulation results with FOAM, performed with CCM2 physics,
//    were somewhat discouraging. In particular, the tropical Pacific ...
//    was poorly represented. ... We found that including the new CCM3
//    moisture physics into our model vastly improved its representation of
//    the tropical Pacific."
//
// Two coupled runs differing only in the physics switch; the reported
// quantity is the tropical-Pacific SST bias/RMSE against the procedural
// climatology, plus the tropical precipitation difference that drives it.

#include <cmath>
#include <cstdio>

#include "base/constants.hpp"
#include "data/earth.hpp"
#include "foam/coupled.hpp"
#include "par/timers.hpp"
#include "stats/moments.hpp"

using namespace foam;
namespace c = foam::constants;

namespace {

struct Outcome {
  double bias = 0.0;
  double rmse = 0.0;
  double precip_mm_day = 0.0;
};

Outcome run_with(atm::PhysicsVersion phys, double spin, double avg) {
  FoamConfig cfg = FoamConfig::testing();
  cfg.ocean = ocean::OceanConfig::testing(64, 64, 8);
  cfg.ocean_accel = 4.0;
  cfg.atm.physics = phys;
  CoupledFoam model(cfg);
  model.run_days(spin);
  stats::RunningFieldMean sst_mean;
  double precip = 0.0;
  int n = 0;
  for (double d = 0.0; d < avg; d += 1.0) {
    model.run_days(1.0);
    sst_mean.add(model.sst());
    precip += model.atmosphere().mean_precip();
    ++n;
  }
  const auto& grid = model.ocean_grid();
  const auto& mask = model.ocean_mask();
  const Field2Dd sst = sst_mean.mean();
  Outcome out;
  double num = 0.0, den = 0.0, sq = 0.0;
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) * c::rad2deg;
    if (lat < -10.0 || lat > 10.0) continue;
    for (int i = 0; i < grid.nlon(); ++i) {
      const double lon = grid.lon(i) * c::rad2deg;
      if (lon < 130.0 || lon > 280.0 || mask(i, j) == 0) continue;
      const double obs =
          data::sst_annual_mean(lat, lon);
      const double d = sst(i, j) - obs;
      num += d;
      sq += d * d;
      den += 1.0;
    }
  }
  out.bias = num / den;
  out.rmse = std::sqrt(sq / den);
  out.precip_mm_day = precip / n * 86400.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double spin = argc > 1 ? std::atof(argv[1]) : 12.0;
  const double avg = argc > 2 ? std::atof(argv[2]) : 10.0;
  std::printf("=== CCM2 vs CCM3 physics (paper section 6) ===\n");
  par::Stopwatch sw;
  const Outcome ccm2 = run_with(atm::PhysicsVersion::kCcm2, spin, avg);
  const Outcome ccm3 = run_with(atm::PhysicsVersion::kCcm3, spin, avg);
  std::printf("two coupled runs (%.0f spin + %.0f mean days each) "
              "in %.0fs wall\n\n",
              spin, avg, sw.seconds());
  std::printf("tropical Pacific (10S-10N, 130E-80W) SST vs climatology:\n");
  std::printf("%-8s %12s %12s %18s\n", "physics", "bias [C]", "rmse [C]",
              "precip [mm/day]");
  std::printf("%-8s %12.2f %12.2f %18.2f\n", "CCM2", ccm2.bias, ccm2.rmse,
              ccm2.precip_mm_day);
  std::printf("%-8s %12.2f %12.2f %18.2f\n", "CCM3", ccm3.bias, ccm3.rmse,
              ccm3.precip_mm_day);
  std::printf("\nrmse change CCM2 -> CCM3: %+.2f C "
              "(paper: CCM3 moist physics vastly improved the region)\n",
              ccm3.rmse - ccm2.rmse);
  return 0;
}
