// Ablation — the three ocean speed techniques of paper §4.2:
//   1. slowed barotropic dynamics (slow_factor),
//   2. split, subcycled free surface (split_barotropic / nsub_baro),
//   3. a longer tracer step (tracer_every).
//
// Each technique is disabled in turn; the reported quantities are abstract
// work per simulated day (grid-point updates), wall seconds per simulated
// day, and the SST drift relative to the full configuration after a short
// common run (the techniques are supposed to be nearly answer-neutral —
// "little difference to the internal motions").

#include <cmath>
#include <cstdio>
#include <vector>

#include "data/earth.hpp"
#include "ocean/model.hpp"
#include "par/timers.hpp"

using namespace foam;
using ocean::OceanConfig;
using ocean::OceanModel;

namespace {

struct Row {
  const char* name;
  OceanConfig cfg;
  double wall_per_day = 0.0;
  double work_per_day = 0.0;
  double sst_diff = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 2.0;
  std::printf("=== Ocean ablation: the three speed techniques ===\n");
  numerics::MercatorGrid grid(64, 64, OceanConfig::kStandardLatMax);
  const Field2Dd bathy = data::bathymetry(grid);

  OceanConfig base = OceanConfig::testing(64, 64, 8);

  std::vector<Row> rows;
  rows.push_back({"full FOAM (all three)", base});
  {
    OceanConfig c = base;
    c.slow_factor = 1.0;  // true gravity: subcycle must shrink to hold CFL
    c.nsub_baro = 96;
    rows.push_back({"no slowing (true-speed waves)", c});
  }
  {
    OceanConfig c = base;
    c.split_barotropic = false;  // whole model at the wave-limited step
    c.dt_mom = c.dt_mom / c.nsub_baro;
    c.tracer_every = c.tracer_every * c.nsub_baro;
    rows.push_back({"no split (all at wave dt)", c});
  }
  {
    OceanConfig c = base;
    c.tracer_every = 1;  // tracers every momentum step
    rows.push_back({"no long tracer step", c});
  }

  Field2Dd taux(64, 64), tauy(64, 64, 0.0);
  for (int j = 0; j < 64; ++j)
    for (int i = 0; i < 64; ++i)
      taux(i, j) = ocean::analytic_zonal_stress(grid.lat(j));

  Field2Dd reference_sst;
  for (auto& row : rows) {
    OceanModel m(row.cfg, grid, bathy);
    m.init_climatology();
    ocean::OceanForcing wind;
    wind.wind_x = &taux;
    wind.wind_y = &tauy;
    m.set_forcing(wind);
    par::Stopwatch sw;
    m.run_days(days);
    row.wall_per_day = sw.seconds() / days;
    row.work_per_day = m.work_points() / days;
    const Field2Dd sst = m.sst();
    if (reference_sst.empty()) {
      reference_sst = sst;
    } else {
      double sq = 0.0;
      int n = 0;
      for (int j = 0; j < 64; ++j)
        for (int i = 0; i < 64; ++i)
          if (m.levels()(i, j) > 0) {
            const double d = sst(i, j) - reference_sst(i, j);
            sq += d * d;
            ++n;
          }
      row.sst_diff = std::sqrt(sq / n);
    }
  }

  std::printf("\n%-34s %12s %12s %14s %12s\n", "configuration", "work/day",
              "wall s/day", "cost vs full", "SST rms dC");
  for (const auto& row : rows)
    std::printf("%-34s %12.3e %12.2f %13.1fx %12.3f\n", row.name,
                row.work_per_day, row.wall_per_day,
                row.work_per_day / rows[0].work_per_day, row.sst_diff);
  std::printf("\npaper shape: each removed technique multiplies the cost\n"
              "while changing the solution little (the SST rms column).\n");
  return 0;
}
