// Figure 1 — the coupler's overlap grid.
//
// Reproduces the construction the paper sketches: the exact intersection of
// the R15 Gaussian atmosphere grid and the 128x128 Mercator ocean grid,
// with the two-sided area-weighted averaging. Reports the overlap-cell
// census, the conservation error of the exchange (zero to round-off by
// construction) and the remap throughput.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "base/constants.hpp"
#include "coupler/overlap.hpp"
#include "data/earth.hpp"
#include "numerics/grid.hpp"
#include "ocean/config.hpp"

namespace {

using namespace foam;
namespace c = foam::constants;

struct Setup {
  Setup()
      : agrid(48, 40),
        ogrid(128, 128, ocean::OceanConfig::kStandardLatMax),
        overlap(agrid, ogrid) {}
  numerics::GaussianGrid agrid;
  numerics::MercatorGrid ogrid;
  coupler::OverlapGrid overlap;
};

Setup& setup() {
  static Setup s;
  return s;
}

void report_construction() {
  Setup& s = setup();
  const double band = 2.0 * c::pi * c::earth_radius * c::earth_radius * 2.0 *
                      std::sin(ocean::OceanConfig::kStandardLatMax *
                               c::deg2rad);
  std::printf("\n=== Figure 1: FOAM overlap grid ===\n");
  std::printf("atmosphere grid : %d x %d (R15 Gaussian)\n", s.agrid.nlon(),
              s.agrid.nlat());
  std::printf("ocean grid      : %d x %d (Mercator, +-%.0f deg)\n",
              s.ogrid.nlon(), s.ogrid.nlat(),
              ocean::OceanConfig::kStandardLatMax);
  std::printf("overlap cells   : %zu\n", s.overlap.cells().size());
  std::printf("area closure    : |sum(cells)/band - 1| = %.3e\n",
              std::abs(s.overlap.total_area() / band - 1.0));

  // Conservation of an area-integrated flux through the exchange.
  Field2Dd flux_a(48, 40);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      flux_a(i, j) = 120.0 + 60.0 * std::sin(0.4 * i) * std::cos(0.3 * j);
  const Field2Dd flux_o = s.overlap.to_ocean(flux_a);
  double int_a = 0.0, int_o = 0.0;
  for (const auto& cell : s.overlap.cells())
    int_a += cell.area * flux_a(cell.ia, cell.ja);
  for (int j = 0; j < 128; ++j)
    for (int i = 0; i < 128; ++i) int_o += s.ogrid.cell_area(j) * flux_o(i, j);
  std::printf("flux conservation (atm->ocean): |ratio - 1| = %.3e\n",
              std::abs(int_o / int_a - 1.0));

  // Round trip with the ocean land mask active (the paper's point: no
  // global interpolation, just averaging each way).
  const Field2D<int> omask = data::ocean_mask(s.ogrid);
  Field2Dd cov;
  const Field2Dd back = s.overlap.to_atm(flux_o, omask, 0.0, &cov);
  double rmse = 0.0;
  int n = 0;
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      if (cov(i, j) > 0.99) {
        rmse += (back(i, j) - flux_a(i, j)) * (back(i, j) - flux_a(i, j));
        ++n;
      }
  std::printf("round-trip RMSE over fully-ocean cells: %.3f (field std %.1f)\n",
              std::sqrt(rmse / n), 60.0 / std::sqrt(2.0));
}

void bm_to_ocean(benchmark::State& state) {
  Setup& s = setup();
  Field2Dd f(48, 40, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.overlap.to_ocean(f));
  }
}
BENCHMARK(bm_to_ocean);

void bm_to_atm(benchmark::State& state) {
  Setup& s = setup();
  static const Field2D<int> omask = data::ocean_mask(setup().ogrid);
  Field2Dd f(128, 128, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.overlap.to_atm(f, omask));
  }
}
BENCHMARK(bm_to_atm);

}  // namespace

int main(int argc, char** argv) {
  report_construction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
