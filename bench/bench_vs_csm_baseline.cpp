// §5 cost-performance "table" — FOAM vs an NCAR-CSM-style coupled
// configuration:
//   "The performance of FOAM can be compared directly to the NCAR CSM
//    coupled model which accomplishes only a third of FOAM's maximum
//    throughput using 16 nodes of a Cray C90."
//
// The CSM of the era coupled a full-cost atmosphere to a conventional
// (unsplit, CFL-limited) ocean with tracers advanced every step. The
// baseline here differs from FOAM in exactly those ocean choices (the
// atmosphere is shared), so the measured ratio isolates the ocean
// formulation + coupling-architecture advantage the paper credits.

#include <cstdio>

#include "foam/coupled.hpp"
#include "par/timers.hpp"

using namespace foam;

namespace {

double seconds_per_day(const FoamConfig& cfg, double days) {
  CoupledFoam model(cfg);
  par::Stopwatch sw;
  model.run_days(days);
  return sw.seconds() / days;
}

}  // namespace

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("=== FOAM vs CSM-style coupled baseline (paper section 5) ===\n");

  // Shared reduced-size atmosphere so the bench completes quickly; the
  // ocean is the full formulation difference.
  FoamConfig foam_cfg = FoamConfig::testing();
  foam_cfg.ocean = ocean::OceanConfig::testing(64, 64, 8);

  FoamConfig csm_cfg = foam_cfg;
  csm_cfg.ocean.split_barotropic = false;
  csm_cfg.ocean.slow_factor = 1.0;
  csm_cfg.ocean.tracer_every = 1;
  csm_cfg.ocean.dt_mom = 120.0;  // external-wave CFL at this resolution

  const double foam_spd = seconds_per_day(foam_cfg, days);
  const double csm_days = std::min(0.25, days);
  const double csm_spd = seconds_per_day(csm_cfg, csm_days);

  std::printf("%-38s %14s %16s\n", "configuration", "wall s/day",
              "speedup [x rt]");
  std::printf("%-38s %14.2f %16.0f\n", "FOAM (split/slowed/long-tracer ocean)",
              foam_spd, 86400.0 / foam_spd);
  std::printf("%-38s %14.2f %16.0f\n", "CSM-style (conventional ocean)",
              csm_spd, 86400.0 / csm_spd);
  std::printf("throughput ratio FOAM/CSM-style: %.1fx  (paper: >= 3x)\n",
              csm_spd / foam_spd);
  return 0;
}
