// Figure 3 — annual-average sea surface temperature: model, observations,
// difference.
//
// The paper shows FOAM's annual-mean SST next to the Shea et al.
// climatology: the broad structure captured, western-boundary gradients
// smeared, largest errors in the Antarctic attributed to the crude sea-ice
// treatment. This bench runs the coupled model to a quasi-equilibrium,
// accumulates an SST mean, and compares with the procedural climatology
// standing in for the observations (DESIGN.md): global/tropical bias and
// RMSE, the warm-pool/cold-tongue contrast, the equator-pole gradient, and
// ASCII renditions of the three panels.

#include <cmath>
#include <cstdio>

#include "base/constants.hpp"
#include "data/earth.hpp"
#include "foam/coupled.hpp"
#include "par/timers.hpp"
#include "stats/moments.hpp"

using namespace foam;
namespace c = foam::constants;

namespace {

void ascii_map(const char* title, const Field2Dd& f, const Field2D<int>& mask,
               double lo, double hi) {
  std::printf("%s  (scale: . < %.0fC, - o O @ toward > %.0fC, # land)\n",
              title, lo, hi);
  const int ny = f.ny(), nx = f.nx();
  for (int jj = 15; jj >= 0; --jj) {
    for (int ii = 0; ii < 64; ++ii) {
      const int i = ii * nx / 64;
      const int j = jj * ny / 16 + ny / 32;
      if (mask(i, j) == 0) {
        std::putchar('#');
        continue;
      }
      const double t = (f(i, j) - lo) / (hi - lo);
      const char* ramp = ".-oO@";
      const int idx = std::max(0, std::min(4, static_cast<int>(t * 5.0)));
      std::putchar(ramp[idx]);
    }
    std::putchar('\n');
  }
}

struct RegionStats {
  double bias = 0.0;
  double rmse = 0.0;
};

RegionStats compare(const Field2Dd& model, const Field2Dd& obs,
                    const Field2D<int>& mask,
                    const numerics::MercatorGrid& grid, double lat_lo,
                    double lat_hi, double lon_lo = 0.0,
                    double lon_hi = 360.0) {
  double num = 0.0, den = 0.0, sq = 0.0;
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) * c::rad2deg;
    if (lat < lat_lo || lat > lat_hi) continue;
    const double a = grid.cell_area(j);
    for (int i = 0; i < grid.nlon(); ++i) {
      const double lon = grid.lon(i) * c::rad2deg;
      if (lon < lon_lo || lon > lon_hi) continue;
      if (mask(i, j) == 0) continue;
      const double d = model(i, j) - obs(i, j);
      num += a * d;
      sq += a * d * d;
      den += a;
    }
  }
  RegionStats s;
  if (den > 0.0) {
    s.bias = num / den;
    s.rmse = std::sqrt(sq / den);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const double spin_days = argc > 1 ? std::atof(argv[1]) : 25.0;
  const double mean_days = argc > 2 ? std::atof(argv[2]) : 15.0;

  std::printf("=== Figure 3: annual-average SST, model vs observations ===\n");
  FoamConfig cfg = FoamConfig::paper_default();
  cfg.ocean_accel = 4.0;  // accelerate the ocean toward equilibrium
  CoupledFoam model(cfg);

  par::Stopwatch sw;
  model.run_days(spin_days);
  stats::RunningFieldMean mean_sst;
  const double sample_every = 1.0;
  for (double d = 0.0; d < mean_days; d += sample_every) {
    model.run_days(sample_every);
    mean_sst.add(model.sst());
  }
  std::printf("spin %.0f + average %.0f coupled days in %.0fs wall "
              "(ocean accel %.0fx)\n",
              spin_days, mean_days, sw.seconds(), cfg.ocean_accel);

  const auto& grid = model.ocean_grid();
  const auto& mask = model.ocean_mask();
  const Field2Dd sst_model = mean_sst.mean();
  const Field2Dd sst_obs = data::sst_annual_mean_field(grid);
  Field2Dd diff(sst_model);
  diff -= sst_obs;

  ascii_map("\n(a) FOAM annual-mean SST", sst_model, mask, -2.0, 28.0);
  ascii_map("\n(b) observations (procedural climatology)", sst_obs, mask,
            -2.0, 28.0);
  ascii_map("\n(c) model minus observations", diff, mask, -6.0, 6.0);

  const auto global = compare(sst_model, sst_obs, mask, grid, -70.0, 70.0);
  const auto tropics = compare(sst_model, sst_obs, mask, grid, -15.0, 15.0);
  const auto trop_pac =
      compare(sst_model, sst_obs, mask, grid, -10.0, 10.0, 130.0, 280.0);
  const auto southern = compare(sst_model, sst_obs, mask, grid, -70.0, -50.0);

  std::printf("\nregion            bias [C]   rmse [C]\n");
  std::printf("global           %8.2f   %8.2f\n", global.bias, global.rmse);
  std::printf("tropics 15S-15N  %8.2f   %8.2f\n", tropics.bias, tropics.rmse);
  std::printf("trop. Pacific    %8.2f   %8.2f\n", trop_pac.bias,
              trop_pac.rmse);
  std::printf("Southern Ocean   %8.2f   %8.2f  (paper: largest errors here)\n",
              southern.bias, southern.rmse);

  // Structural checks the paper's panel conveys.
  auto mean_box = [&](double lat0, double lat1, double lon0, double lon1,
                      const Field2Dd& f) {
    double num = 0.0, den = 0.0;
    for (int j = 0; j < grid.nlat(); ++j) {
      const double lat = grid.lat(j) * c::rad2deg;
      if (lat < lat0 || lat > lat1) continue;
      for (int i = 0; i < grid.nlon(); ++i) {
        const double lon = grid.lon(i) * c::rad2deg;
        if (lon < lon0 || lon > lon1 || mask(i, j) == 0) continue;
        num += f(i, j);
        den += 1.0;
      }
    }
    return den > 0.0 ? num / den : 0.0;
  };
  const double warm_pool = mean_box(-10, 15, 120, 160, sst_model);
  const double cold_tongue = mean_box(-5, 5, 230, 270, sst_model);
  const double equator = mean_box(-5, 5, 0, 360, sst_model);
  const double subpolar = mean_box(55, 68, 0, 360, sst_model);
  std::printf("\nstructure:\n");
  std::printf("warm pool (120-160E)     : %6.2f C\n", warm_pool);
  std::printf("eq. cold tongue (130-90W): %6.2f C  (contrast %+.2f, obs ~-3)\n",
              cold_tongue, cold_tongue - warm_pool);
  std::printf("equatorial mean          : %6.2f C\n", equator);
  std::printf("subpolar N (55-68N)      : %6.2f C  (eq-pole gradient %.1f)\n",
              subpolar, equator - subpolar);
  return 0;
}
