// §5 scaling "table" — coupled-model throughput and scaling:
//   "our best performance has been approximately 6,000 times real time...
//    We have seen almost linear scaling on 8, 16, and 32 atmosphere
//    processors... We typically achieve peak performance faster than 4,000
//    times real time on 34 nodes... one ocean processor has no difficulty
//    keeping up with 16 atmosphere processors, but... can not keep up
//    with 32."
//
// Measured here per placement: model speedup (simulated/wall), the
// per-rank atmosphere work (the scaling quantity — ranks are threads
// multiplexed over the host cores, so per-rank busy time is the
// architecture-level result; wall-clock parallel speedup requires real
// cores), idle fractions, and whether the ocean rank keeps up. Every
// placement is run with both exchange modes so the blocking vs overlap
// comm-wait on the lead atmosphere rank prints side by side.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "foam/coupled.hpp"

using namespace foam;

int main(int argc, char** argv) {
  // One simulated day = 4 coupling exchanges: enough for the overlapped
  // reply (applied one exchange late) to actually hide under the following
  // atmosphere intervals.
  const double days = argc > 1 ? std::atof(argv[1]) : 1.0;
  std::printf("=== Coupled-model scaling (paper section 5) ===\n");
  FoamConfig cfg = FoamConfig::paper_default();
  cfg.atm.emulate_full_core_cost = true;
  cfg.atm.emulate_transforms_per_level = 40;

  struct Placement {
    int atm;
    int ocean;
  };
  const std::vector<Placement> placements = {{1, 1}, {2, 1}, {4, 1}, {8, 1}};
  bench::BenchJson json("coupled_scaling");

  std::printf("%-10s %-8s %9s %10s %13s %11s %10s %8s\n", "placement",
              "mode", "wall [s]", "speedup", "atm busy/rank", "ocean busy",
              "atm wait", "keeps up");
  double busy1 = 0.0;
  for (const auto& p : placements) {
    const int world = p.atm + p.ocean;
    for (const bool overlap : {false, true}) {
      double wall = 0.0, atm_busy = 0.0, ocean_busy = 0.0, speedup = 0.0,
             atm_wait = 0.0;
      par::run(world, [&](par::Comm& comm) {
        ParallelRunOptions opts;
        opts.n_atm = p.atm;
        opts.overlap = overlap;
        const auto res = run_coupled_parallel(comm, opts, cfg, days);
        if (comm.rank() != 0) return;
        wall = res.wall_seconds;
        speedup = res.speedup();
        atm_busy = res.region_seconds(0, par::Region::kAtmosphere);
        ocean_busy = res.region_seconds(p.atm, par::Region::kOcean);
        atm_wait = res.region_seconds(0, par::Region::kCommWait);
      });
      if (p.atm == 1 && !overlap) busy1 = atm_busy;
      const double eff = busy1 > 0.0 ? busy1 / (atm_busy * p.atm) : 0.0;
      const std::vector<std::pair<std::string, std::string>> jcfg = {
          {"atm_ranks", std::to_string(p.atm)},
          {"ocean_ranks", std::to_string(p.ocean)},
          {"exchange", overlap ? "overlap" : "blocking"},
          {"spectral", cfg.atm.spectral_engine ? "engine" : "reference"}};
      json.add("wall_seconds", wall, "s", jcfg);
      json.add("model_speedup", speedup, "x", jcfg);
      json.add("atm_busy_seconds", atm_busy, "s", jcfg);
      json.add("ocean_busy_seconds", ocean_busy, "s", jcfg);
      json.add("atm_commwait_seconds", atm_wait, "s", jcfg);
      std::printf("%2d atm+%d oc %-8s %9.1f %9.0fx %12.2fs %10.2fs %9.2fs "
                  "%7s  (work-scaling efficiency %.0f%%)\n",
                  p.atm, p.ocean, overlap ? "overlap" : "blocking", wall,
                  speedup, atm_busy, ocean_busy, atm_wait,
                  ocean_busy <= atm_busy * 1.25 ? "yes" : "no", 100.0 * eff);
    }
  }
  // Checkpoint overhead A/B: the 8+1 placement with and without a daily
  // checkpoint. The delta is the full cost of crash-safety — serializing
  // every rank's state, the fsync'd shard writes, the completion barrier
  // and the manifest — amortized over the simulated span.
  std::printf("\n--- checkpoint overhead (8 atm + 1 ocean, overlap) ---\n");
  {
    const std::string prefix = "/tmp/bench_ckpt_scaling";
    double wall_plain = 0.0, wall_ckpt = 0.0;
    for (const bool ckpt : {false, true}) {
      par::run(9, [&](par::Comm& comm) {
        ParallelRunOptions opts;
        opts.n_atm = 8;
        opts.overlap = true;
        if (ckpt) {
          opts.checkpoint.path_prefix = prefix;
          opts.checkpoint.every_days = 1.0;
        }
        const auto res = run_coupled_parallel(comm, opts, cfg, days);
        if (comm.rank() == 0) (ckpt ? wall_ckpt : wall_plain) = res.wall_seconds;
      });
    }
    const double overhead =
        wall_plain > 0.0 ? 100.0 * (wall_ckpt - wall_plain) / wall_plain : 0.0;
    const std::vector<std::pair<std::string, std::string>> jcfg = {
        {"atm_ranks", "8"}, {"ocean_ranks", "1"}, {"exchange", "overlap"}};
    json.add("wall_seconds_no_ckpt", wall_plain, "s", jcfg);
    json.add("wall_seconds_daily_ckpt", wall_ckpt, "s", jcfg);
    json.add("ckpt_overhead_pct", overhead, "%", jcfg);
    std::printf("no checkpoint: %8.2fs   daily checkpoint: %8.2fs   "
                "overhead: %+.1f%%\n",
                wall_plain, wall_ckpt, overhead);
  }

  std::printf("\npaper shape: near-linear atmosphere scaling while the\n"
              "atmosphere dominates; the single ocean rank stops keeping up\n"
              "once enough atmosphere ranks shrink the per-rank atm time\n"
              "below the ocean's serial time. The overlap rows show the\n"
              "lead atmosphere rank's comm-wait (the blocking rows' ocean\n"
              "stall) collapsing when the SST reply rides under the next\n"
              "atmosphere interval.\n");
  return 0;
}
