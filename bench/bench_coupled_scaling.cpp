// §5 scaling "table" — coupled-model throughput and scaling:
//   "our best performance has been approximately 6,000 times real time...
//    We have seen almost linear scaling on 8, 16, and 32 atmosphere
//    processors... We typically achieve peak performance faster than 4,000
//    times real time on 34 nodes... one ocean processor has no difficulty
//    keeping up with 16 atmosphere processors, but... can not keep up
//    with 32."
//
// The sweep covers the legacy row placements (N atm + 1 ocean) and the
// 2-D ocean decompositions the RankLayout API added: balanced N+N points
// (1+1, 2+2, 4+4, 8+8, ocean on a px*py rank grid) plus the 2+8 point
// where the per-rank atmosphere and ocean costs actually balance.
//
// Two speedups are reported per placement and exchange mode:
//  * model_speedup — simulated/wall, the honest single-host number. The
//    ranks are threads multiplexed over the host cores, so this *degrades*
//    as ranks are added on a small host; it is kept for continuity with
//    earlier runs of this bench.
//  * scaled_speedup — the dedicated-core estimate from per-rank thread-CPU
//    busy seconds (driver.atm_cpu_seconds / driver.ocean_cpu_seconds,
//    CLOCK_THREAD_CPUTIME_ID, immune to host contention): simulated time
//    over the critical path, max-atm + max-ocean CPU for the blocking
//    exchange, max(max-atm, max-ocean) when the ocean call is overlapped.
//    This is the architecture-level scaling quantity and is gated
//    monotonically non-decreasing through 8+8.
//
// FOAM_BENCH_QUICK=1 shortens the run (0.25 day) for CI smoke use.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "foam/coupled.hpp"

using namespace foam;

namespace {

/// Last value of gauge \p name gathered from \p rank (0 when absent).
double metric_of(const ParallelRunResult& res, int rank, const char* name) {
  if (rank < 0 || rank >= static_cast<int>(res.metrics.size())) return 0.0;
  double out = 0.0;
  for (const auto& [key, value] : res.metrics[rank])
    if (key == name) out = value;
  return out;
}

struct Placement {
  int atm;
  int px;
  int py;
  int ocean() const { return px * py; }
};

struct Measured {
  double wall = 0.0;
  double model_speedup = 0.0;
  double scaled_speedup = 0.0;
  double atm_busy = 0.0;    // wall region seconds, lead atm rank
  double ocean_busy = 0.0;  // wall region seconds, lead ocean rank
  double atm_wait = 0.0;
  double atm_cpu = 0.0;    // max thread-CPU busy over the atm ranks
  double ocean_cpu = 0.0;  // max thread-CPU busy over the ocean ranks
  double fastpath = 0.0;   // comm.fastpath_msgs summed over all ranks
  double handoffs = 0.0;   // comm.zero_copy_handoffs summed over all ranks
};

Measured run_placement(const Placement& p, bool overlap,
                       const FoamConfig& cfg, double days) {
  Measured m;
  par::run(p.atm + p.ocean(), [&](par::Comm& comm) {
    ParallelRunOptions opts;
    opts.layout = RankLayout::grid(p.atm, p.px, p.py);
    opts.overlap = overlap;
    const auto res = run_coupled_parallel(comm, opts, cfg, days);
    if (comm.rank() != 0) return;
    m.wall = res.wall_seconds;
    m.model_speedup = res.speedup();
    m.atm_busy = res.region_seconds(0, par::Region::kAtmosphere);
    m.ocean_busy = res.region_seconds(p.atm, par::Region::kOcean);
    m.atm_wait = res.region_seconds(0, par::Region::kCommWait);
    for (int r = 0; r < p.atm; ++r)
      m.atm_cpu =
          std::max(m.atm_cpu, metric_of(res, r, "driver.atm_cpu_seconds"));
    for (int r = p.atm; r < comm.size(); ++r)
      m.ocean_cpu = std::max(
          m.ocean_cpu, metric_of(res, r, "driver.ocean_cpu_seconds"));
    for (int r = 0; r < comm.size(); ++r) {
      m.fastpath += metric_of(res, r, "comm.fastpath_msgs");
      m.handoffs += metric_of(res, r, "comm.zero_copy_handoffs");
    }
    // Dedicated-core critical path: blocking serializes the ocean call
    // after the atmosphere interval; overlap hides the shorter of the two.
    const double critical = overlap ? std::max(m.atm_cpu, m.ocean_cpu)
                                    : m.atm_cpu + m.ocean_cpu;
    m.scaled_speedup =
        critical > 0.0 ? res.simulated_seconds / critical : 0.0;
  });
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // One simulated day = 4 coupling exchanges: enough for the overlapped
  // reply (applied one exchange late) to actually hide under the following
  // atmosphere intervals.
  const bool quick = std::getenv("FOAM_BENCH_QUICK") != nullptr;
  const double days = argc > 1 ? std::atof(argv[1]) : (quick ? 0.25 : 1.0);
  std::printf("=== Coupled-model scaling (paper section 5) ===%s\n",
              quick ? " [quick]" : "");
  FoamConfig cfg = FoamConfig::paper_default();
  cfg.atm.emulate_full_core_cost = true;
  cfg.atm.emulate_transforms_per_level = 40;

  // Legacy row placements, then the 2-D balanced sweep. 2+8 is the
  // paper-shaped "balanced ratio": the ocean grid is wide enough that
  // per-rank ocean CPU drops under the per-rank atmosphere CPU (a 2-rank
  // atmosphere cannot keep 2+1 fed, but 2+4x2 keeps up).
  const std::vector<Placement> placements = {
      {1, 1, 1}, {2, 1, 1}, {4, 1, 1}, {8, 1, 1},
      {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {2, 4, 2}};
  // Indices (into `placements`) of the balanced N+N chain the
  // scaled-speedup monotonicity gate runs over.
  const std::vector<std::size_t> balanced = {0, 4, 5, 6};
  const std::size_t ratio_point = 7;  // 2+8

  bench::BenchJson json("coupled_scaling");

  std::printf("%-10s %-8s %9s %10s %11s %10s %10s %9s %9s\n", "placement",
              "mode", "wall [s]", "speedup", "scaled", "atm cpu",
              "ocean cpu", "atm wait", "keeps up");
  std::vector<Measured> measured(placements.size() * 2);
  for (std::size_t pi = 0; pi < placements.size(); ++pi) {
    const Placement& p = placements[pi];
    const RankLayout layout = RankLayout::grid(p.atm, p.px, p.py);
    for (const bool overlap : {false, true}) {
      const Measured m = run_placement(p, overlap, cfg, days);
      measured[pi * 2 + (overlap ? 1 : 0)] = m;
      const bench::BenchParams jcfg = {
          {"atm_ranks", p.atm},
          {"ocean_ranks", p.ocean()},
          {"ocean_px", p.px},
          {"ocean_py", p.py},
          {"rank_layout", layout.describe()},
          {"exchange", overlap ? "overlap" : "blocking"},
          {"spectral", cfg.atm.spectral_engine ? "engine" : "reference"}};
      json.add("wall_seconds", m.wall, "s", jcfg);
      json.add("model_speedup", m.model_speedup, "x", jcfg);
      json.add("scaled_speedup", m.scaled_speedup, "x", jcfg);
      json.add("atm_busy_seconds", m.atm_busy, "s", jcfg);
      json.add("ocean_busy_seconds", m.ocean_busy, "s", jcfg);
      json.add("atm_cpu_seconds", m.atm_cpu, "s", jcfg);
      json.add("ocean_cpu_seconds", m.ocean_cpu, "s", jcfg);
      json.add("atm_commwait_seconds", m.atm_wait, "s", jcfg);
      json.add("fastpath_msgs", m.fastpath, "msgs", jcfg);
      json.add("zero_copy_handoffs", m.handoffs, "msgs", jcfg);
      std::printf("%-10s %-8s %9.1f %9.0fx %10.0fx %9.2fs %9.2fs %8.2fs "
                  "%8s\n",
                  layout.describe().c_str(),
                  overlap ? "overlap" : "blocking", m.wall, m.model_speedup,
                  m.scaled_speedup, m.atm_cpu, m.ocean_cpu, m.atm_wait,
                  m.ocean_cpu <= m.atm_cpu ? "yes" : "no");
    }
  }

  // --- gates --------------------------------------------------------------
  // 1. The dedicated-core scaling curve must be monotonically
  //    non-decreasing over the balanced chain 1+1 -> 2+2 -> 4+4 -> 8+8 in
  //    both exchange modes (2% slack for CPU-clock jitter).
  for (const bool overlap : {false, true}) {
    double prev = 0.0;
    std::string prev_name;
    for (const std::size_t pi : balanced) {
      const Placement& p = placements[pi];
      const double s =
          measured[pi * 2 + (overlap ? 1 : 0)].scaled_speedup;
      const std::string name = RankLayout::grid(p.atm, p.px, p.py).describe();
      FOAM_REQUIRE(s >= prev * 0.98,
                   "scaled speedup regressed along the balanced chain ("
                       << (overlap ? "overlap" : "blocking") << "): " << name
                       << " = " << s << "x after " << prev_name << " = "
                       << prev << "x");
      prev = s;
      prev_name = name;
    }
  }
  // 2. At the balanced ratio (2+8) the decomposed ocean must keep up: its
  //    busiest rank's CPU time at or under the busiest atmosphere rank's.
  for (const bool overlap : {false, true}) {
    const Measured& m = measured[ratio_point * 2 + (overlap ? 1 : 0)];
    FOAM_REQUIRE(m.ocean_cpu <= m.atm_cpu,
                 "ocean does not keep up at the balanced 2+8 ratio ("
                     << (overlap ? "overlap" : "blocking")
                     << "): ocean cpu " << m.ocean_cpu << "s > atm cpu "
                     << m.atm_cpu << "s");
  }
  // 3. The messaging runtime's fast paths must actually be exercised by
  //    the coupled model: every placement's run must record small-message
  //    inline-slot traffic and zero-copy ownership handoffs (the flux
  //    exchange and ocean halo ring send via isend_move).
  for (std::size_t pi = 0; pi < placements.size(); ++pi) {
    for (const bool overlap : {false, true}) {
      const Measured& m = measured[pi * 2 + (overlap ? 1 : 0)];
      const Placement& p = placements[pi];
      const std::string name = RankLayout::grid(p.atm, p.px, p.py).describe();
      FOAM_REQUIRE(m.fastpath > 0.0,
                   "no comm.fastpath_msgs recorded at " << name << " ("
                       << (overlap ? "overlap" : "blocking") << ")");
      FOAM_REQUIRE(m.handoffs > 0.0,
                   "no comm.zero_copy_handoffs recorded at " << name << " ("
                       << (overlap ? "overlap" : "blocking") << ")");
    }
  }
  std::printf("\ngates: scaled speedup monotone over 1+1 -> 2+2 -> 4+4 -> "
              "8+8 (both modes); ocean keeps up at 2+8; messaging fast "
              "path + zero-copy handoffs exercised everywhere. PASS\n");

  // Checkpoint overhead A/B: the 8+8 placement with and without a daily
  // checkpoint. The delta is the full cost of crash-safety — serializing
  // every rank's state, the fsync'd shard writes, the completion barrier
  // and the manifest — amortized over the simulated span.
  std::printf("\n--- checkpoint overhead (8 atm + 2x4 ocean, overlap) ---\n");
  {
    const std::string prefix = "/tmp/bench_ckpt_scaling";
    double wall_plain = 0.0, wall_ckpt = 0.0;
    for (const bool ckpt : {false, true}) {
      par::run(16, [&](par::Comm& comm) {
        ParallelRunOptions opts;
        opts.layout = RankLayout::grid(8, 2, 4);
        opts.overlap = true;
        if (ckpt) {
          opts.checkpoint.path_prefix = prefix;
          opts.checkpoint.every_days = 1.0;
        }
        const auto res = run_coupled_parallel(comm, opts, cfg, days);
        if (comm.rank() == 0) (ckpt ? wall_ckpt : wall_plain) = res.wall_seconds;
      });
    }
    const double overhead =
        wall_plain > 0.0 ? 100.0 * (wall_ckpt - wall_plain) / wall_plain : 0.0;
    const bench::BenchParams jcfg = {{"atm_ranks", 8},
                                     {"ocean_ranks", 8},
                                     {"ocean_px", 2},
                                     {"ocean_py", 4},
                                     {"rank_layout", "8+2x4"},
                                     {"exchange", "overlap"}};
    json.add("wall_seconds_no_ckpt", wall_plain, "s", jcfg);
    json.add("wall_seconds_daily_ckpt", wall_ckpt, "s", jcfg);
    json.add("ckpt_overhead_pct", overhead, "%", jcfg);
    std::printf("no checkpoint: %8.2fs   daily checkpoint: %8.2fs   "
                "overhead: %+.1f%%\n",
                wall_plain, wall_ckpt, overhead);
  }

  std::printf("\npaper shape: near-linear scaling while ranks are added to\n"
              "both components; a single ocean rank stops keeping up once\n"
              "enough atmosphere ranks shrink the per-rank atm time below\n"
              "the ocean's serial time — the 2-D ocean decomposition is\n"
              "what pushes the balance point out (2+4x2 keeps up where 2+1\n"
              "cannot). The overlap rows show the lead atmosphere rank's\n"
              "comm-wait collapsing when the SST reply rides under the\n"
              "next atmosphere interval.\n");
  return 0;
}
