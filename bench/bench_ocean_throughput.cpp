// §4.2 throughput "table" — the FOAM ocean's efficiency claims:
//   * "benchmarked the ocean code at 128 x 128 resolution on 64 SP2 nodes
//      running at over 105,000 times real time";
//   * "roughly a tenfold increase in the amount of simulated time
//      represented per unit of computation" vs other formulations.
//
// Measured here: simulated-time / wall-time of the full FOAM ocean at
// 128x128x16 for several rank counts (threads multiplexed over the host
// cores — per-rank work division is the architectural quantity; wall
// speedup needs real cores), and the FOAM-vs-conventional formulation
// ratio in both abstract work (grid-point updates per simulated day) and
// measured wall time.

#include <cstdio>

#include "data/earth.hpp"
#include "foam/coupled.hpp"
#include "ocean/model.hpp"
#include "par/timers.hpp"

using namespace foam;
using ocean::OceanConfig;
using ocean::OceanModel;

namespace {

struct Result {
  double sim_days;
  double wall;
  double work;
};

Result run_serial(const OceanConfig& cfg, const numerics::MercatorGrid& grid,
                  const Field2Dd& bathy, double days) {
  OceanModel m(cfg, grid, bathy);
  m.init_climatology();
  Field2Dd taux(cfg.nx, cfg.ny), tauy(cfg.nx, cfg.ny, 0.0);
  for (int j = 0; j < cfg.ny; ++j)
    for (int i = 0; i < cfg.nx; ++i)
      taux(i, j) = ocean::analytic_zonal_stress(grid.lat(j));
  ocean::OceanForcing wind;
  wind.wind_x = &taux;
  wind.wind_y = &tauy;
  m.set_forcing(wind);
  par::Stopwatch sw;
  m.run_days(days);
  return {days, sw.seconds(), m.work_points()};
}

}  // namespace

int main(int argc, char** argv) {
  const double days = argc > 1 ? std::atof(argv[1]) : 3.0;
  std::printf("=== Ocean throughput (paper section 4.2) ===\n");
  numerics::MercatorGrid grid(128, 128, OceanConfig::kStandardLatMax);
  const Field2Dd bathy = data::bathymetry(grid);

  // --- FOAM configuration, serial and parallel ---------------------------
  const OceanConfig foam_cfg = OceanConfig::foam_default();
  const Result serial = run_serial(foam_cfg, grid, bathy, days);
  std::printf("\nFOAM ocean 128x128x16, %.1f simulated days\n", days);
  std::printf("%6s %12s %14s %16s\n", "ranks", "wall [s]", "speedup [x rt]",
              "work/rank/day");
  std::printf("%6d %12.2f %14.0f %16.3e\n", 1, serial.wall,
              serial.sim_days * 86400.0 / serial.wall,
              serial.work / serial.sim_days);
  for (int ranks : {2, 4}) {
    double wall = 0.0, work_per_rank = 0.0;
    par::run(ranks, [&](par::Comm& comm) {
      OceanModel m(foam_cfg, grid, bathy, &comm);
      m.init_climatology();
      Field2Dd taux(128, 128), tauy(128, 128, 0.0);
      for (int j = 0; j < 128; ++j)
        for (int i = 0; i < 128; ++i)
          taux(i, j) = ocean::analytic_zonal_stress(grid.lat(j));
      ocean::OceanForcing wind;
      wind.wind_x = &taux;
      wind.wind_y = &tauy;
      m.set_forcing(wind);
      par::Stopwatch sw;
      m.run_days(days);
      if (comm.rank() == 0) {
        wall = sw.seconds();
        work_per_rank = m.work_points() / days;
      }
    });
    std::printf("%6d %12.2f %14.0f %16.3e  (per-rank work 1/%d of serial)\n",
                ranks, wall, days * 86400.0 / wall, work_per_rank, ranks);
  }

  // --- formulation comparison: FOAM vs conventional explicit free surface
  std::printf("\nFormulation comparison (the ~10x claim):\n");
  OceanConfig conv = OceanConfig::conventional();
  const double conv_days = std::min(0.25, days);
  const Result baseline = run_serial(conv, grid, bathy, conv_days);
  const double work_ratio = (baseline.work / baseline.sim_days) /
                            (serial.work / serial.sim_days);
  const double wall_ratio = (baseline.wall / baseline.sim_days) /
                            (serial.wall / serial.sim_days);
  std::printf("%-34s %14s %14s\n", "configuration", "work/day", "wall s/day");
  std::printf("%-34s %14.3e %14.2f\n",
              "FOAM (split+slowed+long tracers)",
              serial.work / serial.sim_days, serial.wall / serial.sim_days);
  std::printf("%-34s %14.3e %14.2f\n",
              "conventional (dt = 45 s, unsplit)",
              baseline.work / baseline.sim_days,
              baseline.wall / baseline.sim_days);
  std::printf("conventional / FOAM: work %.1fx, wall %.1fx "
              "(paper: ~10x vs contemporary formulations)\n",
              work_ratio, wall_ratio);
  return 0;
}
