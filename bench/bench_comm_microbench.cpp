// Messaging-runtime microbenchmark — latency/throughput of foam::par
// point-to-point messaging, A/B over the two transports:
//
//  * pingpong_latency — round-trip time of a blocking send/recv pair over
//    message size, 2 ranks, min of several trials (each trial averages
//    thousands of round trips). The small-message rows are the headline:
//    the lock-free SPSC transport must beat the historic mutex/condition-
//    variable mailboxes by >= 3x at 8 bytes (gated), because a blocked
//    receive now spins through the arrival window instead of paying a cv
//    sleep/wakeup.
//  * ring_throughput — aggregate message rate of a ring flood (every rank
//    streams to its successor) over rank count and message size.
//  * rendezvous_bandwidth — isend_move -> recv_vec ownership-handoff
//    transfers, counter-verified zero-copy: the run asserts (gated) that
//    the sender recorded only zero_copy_handoffs, the receiver only
//    zero_copy_recvs, and *neither side counted a single payload memcpy
//    byte* (comm.payload_memcpy_bytes == 0).
//  * small-message fast path — an 8-byte stream must ride the inline slot
//    path (comm.fastpath_msgs, gated nonzero).
//
// Results land in BENCH_comm_microbench.json. FOAM_BENCH_QUICK=1 shortens
// every sweep for CI smoke use.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "par/comm.hpp"
#include "telemetry/telemetry.hpp"

using namespace foam;

namespace {

constexpr int kTag = 7;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Min-of-trials round-trip latency [s] of a blocking ping-pong, 2 ranks.
double pingpong_seconds(par::CommTransport t, std::size_t bytes, int reps,
                        int trials) {
  par::set_comm_transport(t);
  double best = 1e300;
  par::run(2, [&](par::Comm& comm) {
    std::vector<char> buf(std::max<std::size_t>(bytes, 1), 0);
    for (int trial = 0; trial < trials; ++trial) {
      comm.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      if (comm.rank() == 0) {
        for (int i = 0; i < reps; ++i) {
          comm.send_bytes(1, kTag, buf.data(), bytes);
          comm.recv_bytes(1, kTag, buf.data(), buf.size());
        }
        best = std::min(best, seconds_since(t0) / reps);
      } else {
        for (int i = 0; i < reps; ++i) {
          comm.recv_bytes(0, kTag, buf.data(), buf.size());
          comm.send_bytes(0, kTag, buf.data(), bytes);
        }
      }
    }
  });
  return best;
}

/// Per-message round-trip [s] of a *pipelined* ping-pong: \p window
/// messages in flight per direction. Amortizing scheduler handoffs across
/// the window exposes the per-message transport cost (queue ops, locking,
/// wakeups) rather than context-switch latency — the honest comparison on
/// hosts without a spare core per rank.
double pingpong_windowed_seconds(par::CommTransport t, std::size_t bytes,
                                 int window, int iters, int trials) {
  par::set_comm_transport(t);
  double best = 1e300;
  par::run(2, [&](par::Comm& comm) {
    std::vector<char> buf(std::max<std::size_t>(bytes, 1), 0);
    for (int trial = 0; trial < trials; ++trial) {
      comm.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      if (comm.rank() == 0) {
        for (int i = 0; i < iters; ++i) {
          for (int w = 0; w < window; ++w)
            comm.send_bytes(1, kTag, buf.data(), bytes);
          for (int w = 0; w < window; ++w)
            comm.recv_bytes(1, kTag, buf.data(), buf.size());
        }
        best = std::min(best, seconds_since(t0) / (iters * window));
      } else {
        for (int i = 0; i < iters; ++i) {
          for (int w = 0; w < window; ++w)
            comm.recv_bytes(0, kTag, buf.data(), buf.size());
          for (int w = 0; w < window; ++w)
            comm.send_bytes(0, kTag, buf.data(), bytes);
        }
      }
    }
  });
  return best;
}

/// Aggregate message rate [msg/s] of a ring flood: every rank streams
/// \p msgs messages to its successor while draining its predecessor.
double ring_rate(par::CommTransport t, int nranks, std::size_t bytes,
                 int msgs) {
  par::set_comm_transport(t);
  double rate = 0.0;
  par::run(nranks, [&](par::Comm& comm) {
    const int n = comm.size();
    const int dst = (comm.rank() + 1) % n;
    const int src = (comm.rank() + n - 1) % n;
    std::vector<char> out(std::max<std::size_t>(bytes, 1), 0);
    std::vector<char> in(out.size(), 0);
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < msgs; ++i) {
      comm.send_bytes(dst, kTag, out.data(), bytes);
      comm.recv_bytes(src, kTag, in.data(), in.size());
    }
    comm.barrier();
    if (comm.rank() == 0)
      rate = static_cast<double>(msgs) * n / seconds_since(t0);
  });
  return rate;
}

struct PathCounters {
  std::uint64_t fastpath = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t zc_recvs = 0;
  std::uint64_t memcpy_bytes = 0;
};

/// K ownership-handoff transfers of \p count doubles, rank 0 -> rank 1,
/// with per-rank telemetry sessions; returns bandwidth and both ranks'
/// zero-copy counters for the gates.
double rendezvous_run(std::size_t count, int transfers,
                      PathCounters per_rank[2]) {
  par::set_comm_transport(par::CommTransport::kSpsc);
  double bandwidth = 0.0;
  par::run(2, [&](par::Comm& comm) {
    telemetry::Telemetry tel;
    telemetry::ScopedSession session(tel);
    comm.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (int i = 0; i < transfers; ++i) {
      if (comm.rank() == 0) {
        std::vector<double> block(count, static_cast<double>(i));
        comm.isend_move(1, kTag, std::move(block));
      } else {
        std::vector<double> block;
        comm.recv_vec(0, kTag, block);
        sink += block[0] + block[count - 1];  // touch the moved-in buffer
      }
    }
    comm.barrier();
    const double elapsed = seconds_since(t0);
    if (comm.rank() == 1 && sink < 0.0) std::printf("unreachable\n");
    if (comm.rank() == 0)
      bandwidth = static_cast<double>(transfers) * count * sizeof(double) /
                  elapsed;
    const telemetry::CommStats& cs = tel.comm();
    per_rank[comm.rank()] = {cs.fastpath_msgs, cs.zero_copy_handoffs,
                             cs.zero_copy_recvs, cs.payload_memcpy_bytes};
  });
  return bandwidth;
}

/// A small-message stream with a telemetry session: counts fast-path use.
PathCounters fastpath_run(int msgs) {
  par::set_comm_transport(par::CommTransport::kSpsc);
  PathCounters sender;
  par::run(2, [&](par::Comm& comm) {
    telemetry::Telemetry tel;
    telemetry::ScopedSession session(tel);
    double v = 0.0;
    if (comm.rank() == 0) {
      for (int i = 0; i < msgs; ++i) comm.send(1, kTag, v);
      sender = {tel.comm().fastpath_msgs, tel.comm().zero_copy_handoffs,
                tel.comm().zero_copy_recvs, tel.comm().payload_memcpy_bytes};
    } else {
      for (int i = 0; i < msgs; ++i) comm.recv(0, kTag, v);
    }
    comm.barrier();
  });
  return sender;
}

}  // namespace

int main() {
  const bool quick = std::getenv("FOAM_BENCH_QUICK") != nullptr;
  bench::BenchJson json("comm_microbench");
  json.set_common("quick", quick);

  // --- ping-pong latency sweep, both transports -------------------------
  const std::size_t sizes[] = {0, 8, 256, 4096, 65536};
  const int trials = quick ? 2 : 3;
  double lat_small[2] = {0.0, 0.0};  // [transport] at 8 bytes
  std::printf("%-10s %10s %16s %16s\n", "bytes", "", "spsc [us]",
              "mutex [us]");
  for (const std::size_t bytes : sizes) {
    const int reps =
        (quick ? 2000 : 20000) / (bytes >= 65536 ? 10 : 1);
    double lat[2];
    for (const par::CommTransport t :
         {par::CommTransport::kSpsc, par::CommTransport::kMutex}) {
      const double s = pingpong_seconds(t, bytes, reps, trials);
      lat[static_cast<int>(t)] = s;
      json.add("pingpong_latency", s, "s/roundtrip",
               {{"transport", par::comm_transport_name(t)},
                {"bytes", static_cast<std::int64_t>(bytes)},
                {"ranks", 2}});
      if (bytes == 8) lat_small[static_cast<int>(t)] = s;
    }
    std::printf("%-10zu %10s %16.3f %16.3f\n", bytes, "", lat[0] * 1e6,
                lat[1] * 1e6);
  }
  const double speedup = lat_small[1] / lat_small[0];
  json.add("small_msg_latency_speedup", speedup, "x",
           {{"bytes", 8}, {"baseline", "mutex"}});
  std::printf("small-message (8 B) blocking latency speedup: %.2fx\n",
              speedup);

  // Pipelined variant: window of messages in flight per direction, so the
  // per-message number reflects transport cost, not context switches.
  const int window = 64;
  const int witers = (quick ? 2000 : 20000) / window;
  double wlat_small[2] = {0.0, 0.0};
  for (const std::size_t bytes : {std::size_t{8}, std::size_t{256}}) {
    for (const par::CommTransport t :
         {par::CommTransport::kSpsc, par::CommTransport::kMutex}) {
      const double s =
          pingpong_windowed_seconds(t, bytes, window, witers, trials);
      json.add("pingpong_pipelined_latency", s, "s/msg",
               {{"transport", par::comm_transport_name(t)},
                {"bytes", static_cast<std::int64_t>(bytes)},
                {"window", window},
                {"ranks", 2}});
      if (bytes == 8) wlat_small[static_cast<int>(t)] = s;
    }
  }
  const double speedup_pipelined = wlat_small[1] / wlat_small[0];
  json.add("small_msg_pipelined_speedup", speedup_pipelined, "x",
           {{"bytes", 8}, {"window", window}, {"baseline", "mutex"}});
  std::printf(
      "small-message (8 B) pipelined speedup: %.2fx (spsc %.3f us/msg vs "
      "mutex %.3f us/msg)\n",
      speedup_pipelined, wlat_small[0] * 1e6, wlat_small[1] * 1e6);

  // On a single-CPU host every transport's blocking round trip bottoms out
  // at two scheduler handoffs (the spsc row above *is* that floor), so a 3x
  // latency demonstration is physically impossible there. The >= 3x gate
  // therefore applies on hosts with real parallelism; a single-CPU host
  // instead gates the pipelined per-message speedup, which isolates
  // transport cost from context switching, at a margin-safe >= 1.25x.
  const bool parallel_host = std::thread::hardware_concurrency() >= 2;
  const double gated_speedup = parallel_host ? speedup : speedup_pipelined;
  const double gate_floor = parallel_host ? 3.0 : 1.25;
  std::printf("latency gate (%s host): %s speedup %.2fx, floor %.2fx\n",
              parallel_host ? "multi-CPU" : "single-CPU",
              parallel_host ? "blocking" : "pipelined", gated_speedup,
              gate_floor);

  // --- ring throughput over rank count ----------------------------------
  const int rank_counts_full[] = {2, 4, 8, 16};
  const int rank_counts_quick[] = {2, 8};
  const auto* rank_counts = quick ? rank_counts_quick : rank_counts_full;
  const int n_rank_counts = quick ? 2 : 4;
  const int msgs = quick ? 2000 : 10000;
  for (int i = 0; i < n_rank_counts; ++i) {
    const int nr = rank_counts[i];
    for (const std::size_t bytes : {std::size_t{64}, std::size_t{4096}}) {
      for (const par::CommTransport t :
           {par::CommTransport::kSpsc, par::CommTransport::kMutex}) {
        const double rate = ring_rate(t, nr, bytes, msgs);
        json.add("ring_throughput", rate, "msg/s",
                 {{"transport", par::comm_transport_name(t)},
                  {"bytes", static_cast<std::int64_t>(bytes)},
                  {"ranks", nr}});
        std::printf("ring %2d ranks, %5zu B, %-5s: %10.0f msg/s\n", nr,
                    bytes, par::comm_transport_name(t), rate);
      }
    }
  }

  // --- rendezvous path: bandwidth + zero-copy counters ------------------
  const std::size_t count = std::size_t{1} << 17;  // 1 MiB of doubles
  const int transfers = quick ? 50 : 400;
  PathCounters rv[2];
  const double bw = rendezvous_run(count, transfers, rv);
  json.add("rendezvous_bandwidth", bw, "B/s",
           {{"transport", "spsc"},
            {"bytes", static_cast<std::int64_t>(count * sizeof(double))}});
  json.add("rendezvous_memcpy_bytes",
           static_cast<double>(rv[0].memcpy_bytes + rv[1].memcpy_bytes),
           "B", {{"transport", "spsc"}});
  std::printf("rendezvous: %.2f GB/s, handoffs=%llu moves=%llu "
              "memcpy_bytes=%llu (gate == 0)\n",
              bw / 1e9, static_cast<unsigned long long>(rv[0].handoffs),
              static_cast<unsigned long long>(rv[1].zc_recvs),
              static_cast<unsigned long long>(rv[0].memcpy_bytes +
                                              rv[1].memcpy_bytes));

  // --- small-message fast path ------------------------------------------
  const PathCounters fp = fastpath_run(quick ? 2000 : 20000);
  json.add("fastpath_msgs", static_cast<double>(fp.fastpath), "msgs",
           {{"transport", "spsc"}, {"bytes", 8}});

  // --- gates ------------------------------------------------------------
  FOAM_REQUIRE(gated_speedup >= gate_floor,
               "small-message latency gate: spsc must be >= "
                   << gate_floor << "x faster than the mutex baseline, "
                   << "measured " << gated_speedup << "x ("
                   << (parallel_host ? "blocking" : "pipelined")
                   << " 8 B round trip)");
  FOAM_REQUIRE(rv[0].handoffs == static_cast<std::uint64_t>(transfers),
               "rendezvous gate: sender recorded " << rv[0].handoffs
                                                   << " handoffs, expected "
                                                   << transfers);
  FOAM_REQUIRE(rv[1].zc_recvs == static_cast<std::uint64_t>(transfers),
               "rendezvous gate: receiver recorded "
                   << rv[1].zc_recvs << " zero-copy move-outs, expected "
                   << transfers);
  FOAM_REQUIRE(rv[0].memcpy_bytes == 0 && rv[1].memcpy_bytes == 0,
               "rendezvous gate: payload memcpy bytes must be zero, got "
                   << rv[0].memcpy_bytes << " (send) / "
                   << rv[1].memcpy_bytes << " (recv)");
  FOAM_REQUIRE(fp.fastpath > 0,
               "fast-path gate: no messages took the inline-slot path");
  std::printf("all gates passed\n");
  return 0;
}
