#pragma once

/// \file bench_json.hpp
/// Machine-readable bench output: each bench accumulates (metric, value,
/// unit, config) rows and writes them to BENCH_<name>.json in the working
/// directory, so CI can archive results next to the human-readable stdout.
///
/// No dependencies beyond the standard library; the emitted document is
///   { "bench": "<name>", "results": [
///       { "metric": "...", "value": <num>, "unit": "...",
///         "config": { "key": "value", ... } }, ... ] }

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace foam::bench {

class BenchJson {
 public:
  /// \p name becomes the BENCH_<name>.json filename.
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Destructor writes the file (explicit write() earlier also works).
  ~BenchJson() { write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void add(const std::string& metric, double value, const std::string& unit,
           const std::vector<std::pair<std::string, std::string>>& config =
               {}) {
    rows_.push_back(Row{metric, value, unit, config});
  }

  /// Write BENCH_<name>.json; idempotent (later calls rewrite the file
  /// with any rows added since).
  void write() {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;  // benches must not fail on an RO directory
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"results\": [",
                 quoted(name_).c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "%s\n    { \"metric\": %s, \"value\": %.17g, "
                      "\"unit\": %s, \"config\": {",
                   i == 0 ? "" : ",", quoted(r.metric).c_str(), r.value,
                   quoted(r.unit).c_str());
      for (std::size_t c = 0; c < r.config.size(); ++c)
        std::fprintf(f, "%s %s: %s", c == 0 ? "" : ",",
                     quoted(r.config[c].first).c_str(),
                     quoted(r.config[c].second).c_str());
      std::fprintf(f, " } }");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Row {
    std::string metric;
    double value;
    std::string unit;
    std::vector<std::pair<std::string, std::string>> config;
  };

  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      if (static_cast<unsigned char>(ch) >= 0x20) {
        out += ch;
      } else {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      }
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace foam::bench
