#pragma once

/// \file bench_json.hpp
/// Machine-readable bench output: each bench accumulates (metric, value,
/// unit, params) rows and writes them to BENCH_<name>.json in the working
/// directory, so CI can archive results next to the human-readable stdout.
///
/// Parameters are typed (string / double / integer / bool) and emitted as
/// the matching native JSON type, so downstream tooling can filter on
/// `config.atm_ranks == 8` without string-parsing. Common parameters set
/// once with set_common (notably "rank_layout" — every FOAM bench stamps
/// the rank layout of each row, "serial" for single-process benches) are
/// merged into every row's config; row-local keys win.
///
/// No dependencies beyond the standard library; the emitted document is
///   { "bench": "<name>", "results": [
///       { "metric": "...", "value": <num>, "unit": "...",
///         "config": { "key": <value>, ... } }, ... ] }

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace foam::bench {

/// One typed bench parameter, encoded as the matching native JSON type.
class BenchParam {
 public:
  BenchParam(const char* s) : v_(std::string(s)) {}
  BenchParam(std::string s) : v_(std::move(s)) {}
  BenchParam(double d) : v_(d) {}
  BenchParam(int i) : v_(static_cast<std::int64_t>(i)) {}
  BenchParam(std::int64_t i) : v_(i) {}
  BenchParam(bool b) : v_(b) {}

  /// JSON encoding of the value (strings quoted and escaped).
  std::string json() const {
    if (const auto* s = std::get_if<std::string>(&v_)) return quoted(*s);
    if (const auto* d = std::get_if<double>(&v_)) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", *d);
      return buf;
    }
    if (const auto* i = std::get_if<std::int64_t>(&v_))
      return std::to_string(*i);
    return std::get<bool>(v_) ? "true" : "false";
  }

  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      if (static_cast<unsigned char>(ch) >= 0x20) {
        out += ch;
      } else {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      }
    }
    out += '"';
    return out;
  }

 private:
  std::variant<std::string, double, std::int64_t, bool> v_;
};

/// Ordered (name, value) parameter list attached to a result row.
using BenchParams = std::vector<std::pair<std::string, BenchParam>>;

class BenchJson {
 public:
  /// \p name becomes the BENCH_<name>.json filename.
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Destructor writes the file (explicit write() earlier also works).
  ~BenchJson() { write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Set a parameter merged into every row's config (row keys shadow it).
  void set_common(const std::string& key, BenchParam value) {
    for (auto& kv : common_)
      if (kv.first == key) {
        kv.second = std::move(value);
        return;
      }
    common_.emplace_back(key, std::move(value));
  }

  void add(const std::string& metric, double value, const std::string& unit,
           BenchParams config = {}) {
    rows_.push_back(Row{metric, value, unit, std::move(config)});
  }

  /// Write BENCH_<name>.json; idempotent (later calls rewrite the file
  /// with any rows added since).
  void write() {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;  // benches must not fail on an RO directory
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"results\": [",
                 BenchParam::quoted(name_).c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "%s\n    { \"metric\": %s, \"value\": %.17g, "
                      "\"unit\": %s, \"config\": {",
                   i == 0 ? "" : ",", BenchParam::quoted(r.metric).c_str(),
                   r.value, BenchParam::quoted(r.unit).c_str());
      std::size_t n = 0;
      for (const auto& [key, value] : r.config)
        std::fprintf(f, "%s %s: %s", n++ == 0 ? "" : ",",
                     BenchParam::quoted(key).c_str(), value.json().c_str());
      for (const auto& [key, value] : common_) {
        bool shadowed = false;
        for (const auto& kv : r.config) shadowed = shadowed || kv.first == key;
        if (shadowed) continue;
        std::fprintf(f, "%s %s: %s", n++ == 0 ? "" : ",",
                     BenchParam::quoted(key).c_str(), value.json().c_str());
      }
      std::fprintf(f, " } }");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Row {
    std::string metric;
    double value;
    std::string unit;
    BenchParams config;
  };

  std::string name_;
  BenchParams common_;
  std::vector<Row> rows_;
};

}  // namespace foam::bench
