// Spectral-transform kernel bench: reference scalar loops vs the plan-based
// engine (allocation-free real FFT, parity-folded Legendre panels, batched
// multi-field passes), at the paper's R15 resolution and at R31.
//
// Reported per (resolution, implementation, shape): ns per transform and
// effective GFLOP/s (flops counted against the reference algorithm, so the
// engine's folding shows up as higher effective throughput rather than a
// smaller flop count). The batched rows transform a 15-field stack — the
// level count of the emulated full 18-level core (nlev - ndyn) — per pass.
//
// The engine must agree with the reference to <= 1e-12 relative on every
// entry point; the bench verifies this before timing and reports the worst
// relative difference.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "numerics/spectral.hpp"

using foam::Field2Dd;
using foam::numerics::GaussianGrid;
using foam::numerics::SpectralField;
using foam::numerics::SpectralMode;
using foam::numerics::SpectralTransform;
using foam::numerics::SpectralWorkspace;

namespace {

template <class F>
double ns_per_call(F&& fn) {
  using clock = std::chrono::steady_clock;
  fn();
  fn();  // warm caches and workspace growth
  int reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (int r = 0; r < reps; ++r) fn();
    const double sec =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (sec > 0.2 || reps >= (1 << 22)) return sec * 1e9 / reps;
    reps *= 4;
  }
}

/// Smooth deterministic test field: a handful of resolvable harmonics with
/// level-dependent phases.
Field2Dd make_field(const GaussianGrid& grid, int level) {
  Field2Dd f(grid.nlon(), grid.nlat());
  for (int j = 0; j < grid.nlat(); ++j) {
    const double mu = grid.mu(j);
    for (int i = 0; i < grid.nlon(); ++i) {
      const double lam = 2.0 * M_PI * i / grid.nlon();
      f(i, j) = std::sin(2.0 * lam + 0.3 * level) * (1.0 - mu * mu) +
                0.5 * std::cos(5.0 * lam) * mu +
                0.2 * std::sin((3.0 + level % 3) * lam) * mu * mu + 0.1 * mu;
    }
  }
  return f;
}

double max_abs(const SpectralField& s) {
  double m = 0.0;
  for (int mm = 0; mm <= s.mmax(); ++mm)
    for (int k = 0; k < s.kmax(); ++k)
      m = std::max(m, std::abs(s.at(mm, k)));
  return m;
}

double rel_diff(const SpectralField& a, const SpectralField& b) {
  const double scale = std::max(max_abs(a), 1e-300);
  double worst = 0.0;
  for (int m = 0; m <= a.mmax(); ++m)
    for (int k = 0; k < a.kmax(); ++k)
      worst = std::max(worst, std::abs(a.at(m, k) - b.at(m, k)) / scale);
  return worst;
}

double rel_diff(const Field2Dd& a, const Field2Dd& b) {
  double scale = 1e-300, worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    scale = std::max(scale, std::abs(a.vec()[i]));
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a.vec()[i] - b.vec()[i]) / scale);
  return worst;
}

struct Case {
  const char* name;
  int nlon, nlat, mmax;
};

void run_case(const Case& c, foam::bench::BenchJson& out,
              double* r15_batched_speedup, double* worst_agreement) {
  const int batch = 15;  // emulated level stack (nlev - ndyn)
  GaussianGrid grid(c.nlon, c.nlat);
  SpectralTransform st(grid, c.mmax, SpectralMode::kReference);
  SpectralWorkspace ws;

  std::vector<Field2Dd> fields;
  std::vector<const Field2Dd*> f_ptrs;
  for (int l = 0; l < batch; ++l) fields.push_back(make_field(grid, l));
  for (auto& f : fields) f_ptrs.push_back(&f);

  // --- correctness gate: engine vs reference on every entry point ------
  double worst = 0.0;
  st.set_mode(SpectralMode::kReference);
  const SpectralField s_ref = st.analyze(fields[0]);
  const Field2Dd g_ref = st.synthesize(s_ref);
  const SpectralField d_ref = st.analyze_div(fields[0], fields[1]);
  const SpectralField c_ref = st.analyze_curl(fields[0], fields[1]);
  st.set_mode(SpectralMode::kEngine);
  worst = std::max(worst, rel_diff(s_ref, st.analyze(fields[0], ws)));
  worst = std::max(worst, rel_diff(g_ref, st.synthesize(s_ref, ws)));
  worst = std::max(worst, rel_diff(d_ref, st.analyze_div(fields[0],
                                                         fields[1])));
  worst = std::max(worst, rel_diff(c_ref, st.analyze_curl(fields[0],
                                                          fields[1])));
  std::printf("%s: engine vs reference worst relative difference = %.3g "
              "(%s <= 1e-12)\n",
              c.name, worst, worst <= 1e-12 ? "OK" : "FAIL");
  out.add("agreement_rel", worst, "relative",
          {{"resolution", c.name}});
  *worst_agreement = std::max(*worst_agreement, worst);

  // Reference flop count per scalar transform (Legendre triple loop at 8
  // flops per (m, k, j) complex-times-real multiply-add, plus ~5 N log2 N
  // per FFT row): the engine is credited with the same useful work.
  const double nm = c.mmax + 1.0, kmax = c.mmax + 1.0;
  const double legendre_flops = 8.0 * c.nlat * nm * kmax;
  const double fft_flops =
      5.0 * c.nlat * c.nlon * std::log2(static_cast<double>(c.nlon));
  const double flops = legendre_flops + fft_flops;

  std::vector<SpectralField> specs;
  std::vector<const SpectralField*> s_ptrs;
  std::vector<Field2Dd> grids(batch, Field2Dd(c.nlon, c.nlat));
  std::vector<Field2Dd*> g_ptrs;
  st.set_mode(SpectralMode::kReference);
  for (int l = 0; l < batch; ++l) specs.push_back(st.analyze(fields[l]));
  for (auto& s : specs) s_ptrs.push_back(&s);
  for (auto& g : grids) g_ptrs.push_back(&g);

  struct Shape {
    const char* mode;
    SpectralMode m;
  };
  double ns_ref_batched = 0.0, ns_eng_batched = 0.0;
  for (const Shape& sh :
       {Shape{"reference", SpectralMode::kReference},
        Shape{"engine", SpectralMode::kEngine}}) {
    st.set_mode(sh.m);
    const double ns_an = ns_per_call([&] {
      volatile double sink = st.analyze(fields[0], ws).at(1, 1).real();
      (void)sink;
    });
    const double ns_sy = ns_per_call([&] {
      volatile double sink = st.synthesize(specs[0], ws)(0, 0);
      (void)sink;
    });
    const double ns_ban = ns_per_call([&] {
                            volatile double sink =
                                st.analyze_batch(f_ptrs, ws)[0].at(1, 1).real();
                            (void)sink;
                          }) /
                          batch;
    const double ns_bsy = ns_per_call([&] {
                            st.synthesize_batch(s_ptrs, g_ptrs, ws);
                          }) /
                          batch;
    if (sh.m == SpectralMode::kReference) ns_ref_batched = ns_ban + ns_bsy;
    if (sh.m == SpectralMode::kEngine) ns_eng_batched = ns_ban + ns_bsy;
    std::printf(
        "%s %-9s analyze %9.0f ns (%5.2f GFLOP/s)  synthesize %9.0f ns "
        "(%5.2f GFLOP/s)  batched[%d] analyze %9.0f ns  synthesize %9.0f "
        "ns\n",
        c.name, sh.mode, ns_an, flops / ns_an, ns_sy, flops / ns_sy, batch,
        ns_ban, ns_bsy);
    const foam::bench::BenchParams base = {
        {"resolution", c.name}, {"impl", sh.mode}};
    auto with_shape = [&](const char* shape) {
      auto cfg = base;
      cfg.emplace_back("shape", shape);
      return cfg;
    };
    out.add("analyze_ns_per_transform", ns_an, "ns", with_shape("single"));
    out.add("synthesize_ns_per_transform", ns_sy, "ns",
            with_shape("single"));
    out.add("analyze_gflops", flops / ns_an, "GFLOP/s",
            with_shape("single"));
    out.add("synthesize_gflops", flops / ns_sy, "GFLOP/s",
            with_shape("single"));
    out.add("analyze_ns_per_transform", ns_ban, "ns", with_shape("batched"));
    out.add("synthesize_ns_per_transform", ns_bsy, "ns",
            with_shape("batched"));
    out.add("analyze_gflops", flops / ns_ban, "GFLOP/s",
            with_shape("batched"));
    out.add("synthesize_gflops", flops / ns_bsy, "GFLOP/s",
            with_shape("batched"));
  }
  const double speedup = ns_ref_batched / ns_eng_batched;
  std::printf("%s batched analyze+synthesize speedup: %.2fx engine over "
              "reference\n\n",
              c.name, speedup);
  out.add("batched_speedup", speedup, "x", {{"resolution", c.name}});
  if (std::string(c.name) == "R15" && r15_batched_speedup != nullptr)
    *r15_batched_speedup = speedup;
}

}  // namespace

int main() {
  std::printf("=== spectral transform kernels: reference vs engine ===\n");
  foam::bench::BenchJson out("spectral_kernels");
  out.set_common("rank_layout", "serial");
  double r15_speedup = 0.0;
  double worst_agreement = 0.0;
  for (const Case& c : {Case{"R15", 48, 40, 15}, Case{"R31", 96, 80, 31}})
    run_case(c, out, &r15_speedup, &worst_agreement);
  const bool pass = r15_speedup >= 2.0 && worst_agreement <= 1e-12;
  std::printf("acceptance: batched R15 analyze+synthesize %.2fx (target "
              ">= 2x), agreement %.3g (target <= 1e-12): %s\n",
              r15_speedup, worst_agreement, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
