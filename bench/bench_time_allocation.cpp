// Figure 2 — time allocation for a typical FOAM run.
//
// The paper's figure shows, for each SP processor of a 17-node run (16
// atmosphere + 1 ocean), how one simulated day divides into atmosphere
// (green), coupler (red), ocean (blue) and idle (purple) time, with the
// twice-daily radiation recomputations visible as long atmosphere steps
// and the single ocean processor keeping up with 16 atmosphere processors.
//
// This bench runs the same placement (scaled to the host: the runtime
// multiplexes ranks onto the available cores, so on a single-core host the
// per-rank *fractions* are the meaningful output, not wall concurrency)
// and prints the per-rank timeline and aggregate shares. Each placement is
// run twice — blocking exchange, then comm/compute overlap — so the
// "comm-wait" column shows the atmosphere rank's exchange stall shrinking
// when the SST reply is left in flight across the next interval.
//
// It is also the gate for the telemetry subsystem:
//  * regions-only tracing is run A/B against tracing off on the same
//    placement and its busy-time overhead asserted under 2% (+0.2 s
//    scheduler slack) — the production-default budget;
//  * a full-trace run exports TRACE_time_allocation.json (Chrome
//    trace-event format, loadable in ui.perfetto.dev), self-validated
//    here: strict JSON, >= 4 ranks present as distinct tids, nested spans
//    recorded, and span-derived region totals matching the flat timeline
//    totals within 1%.
//
// FOAM_BENCH_QUICK=1 shortens the run (0.25 day, largest placement
// skipped) for CI smoke use.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "foam/coupled.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/observe.hpp"

using namespace foam;

namespace {

/// \p engine toggles the plan-based spectral engine vs the reference
/// transform loops (the A/B that shows the atmosphere's spectral share
/// shrinking); \p level the telemetry depth for the run. Returns the lead
/// atmosphere rank's busy seconds; with \p capture the world-rank-0 result
/// (timelines, traces, metrics) is copied out.
double run_placement(int n_atm, int n_ocean, double days, bool overlap,
                     bool engine, telemetry::TraceLevel level,
                     bench::BenchJson& json,
                     ParallelRunResult* capture = nullptr, int rep = 0,
                     bool audit = false,
                     const telemetry::ObservabilityOptions* observe =
                         nullptr) {
  FoamConfig cfg = FoamConfig::paper_default();
  cfg.atm.emulate_full_core_cost = true;
  cfg.atm.emulate_transforms_per_level = 40;  // full 18-level core cost
  cfg.atm.spectral_engine = engine;
  const int world = n_atm + n_ocean;
  const char* obs_label = observe == nullptr ? "off"
                          : observe->profile ? "profile"
                                             : "live";
  double atm_busy_out = 0.0, ocean_busy_out = 0.0, wait_out = 0.0,
         atm_share_out = 0.0;
  std::printf(
      "\n--- placement: %d atmosphere + %d ocean ranks, %.2f day, "
      "%s exchange, %s transforms, telemetry %s, verify %s, observe %s "
      "---\n",
      n_atm, n_ocean, days, overlap ? "overlap" : "blocking",
      engine ? "engine" : "reference", telemetry::trace_level_name(level),
      audit ? "audit" : "off", obs_label);
  par::run(world, [&](par::Comm& comm) {
    ParallelRunOptions opts;
    opts.n_atm = n_atm;
    opts.overlap = overlap;
    opts.telemetry.level = level;
    opts.verify.mode = audit ? par::VerifyMode::kAudit : par::VerifyMode::kOff;
    // Explicitly off when the caller passed nothing: the bench must not
    // inherit FOAM_OBSERVE from the environment or the A/B is polluted.
    opts.observe = observe != nullptr ? *observe
                                      : telemetry::ObservabilityOptions{};
    const auto res = run_coupled_parallel(comm, opts, cfg, days);
    // A correct coupled schedule must audit clean: any unmatched send,
    // leaked request or wildcard race in the exchange protocol is a bug.
    if (audit)
      FOAM_REQUIRE(res.verify_findings == 0,
                   "par-verify audit reported " << res.verify_findings
                                                << " findings");
    if (comm.rank() != 0) return;
    if (capture != nullptr) *capture = res;
    std::printf("simulated %.2f h in %.1f s wall => speedup %.0fx\n",
                res.simulated_seconds / 3600.0, res.wall_seconds,
                res.speedup());
    std::printf(
        "%-6s %9s %9s %9s %9s %9s   bar (a=atm c=coupler o=ocean w=wait "
        ".=idle)\n",
        "rank", "atm%", "coupler%", "ocean%", "wait%", "idle%");
    for (int r = 0; r < world; ++r) {
      double tot[par::kRegionCount] = {0};
      double sum = 0.0;
      for (const auto& seg : res.timelines[r]) {
        tot[static_cast<int>(seg.region)] += seg.t1 - seg.t0;
        sum += seg.t1 - seg.t0;
      }
      if (sum <= 0.0) sum = 1.0;
      // Render the timeline as a 60-char bar in recorded order.
      char bar[61];
      const double t_end = res.timelines[r].empty()
                               ? 1.0
                               : res.timelines[r].back().t1;
      for (int x = 0; x < 60; ++x) {
        const double t = (x + 0.5) / 60.0 * t_end;
        char ch = '.';
        for (const auto& seg : res.timelines[r]) {
          if (t >= seg.t0 && t < seg.t1) {
            switch (seg.region) {
              case par::Region::kAtmosphere: ch = 'a'; break;
              case par::Region::kCoupler: ch = 'c'; break;
              case par::Region::kOcean: ch = 'o'; break;
              case par::Region::kCommWait: ch = 'w'; break;
              default: ch = '.'; break;
            }
            break;
          }
        }
        bar[x] = ch;
      }
      bar[60] = '\0';
      std::printf("%-6d %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%   %s\n", r,
                  100.0 * tot[0] / sum, 100.0 * tot[1] / sum,
                  100.0 * tot[2] / sum,
                  100.0 * tot[static_cast<int>(par::Region::kCommWait)] /
                      sum,
                  100.0 * tot[3] / sum, bar);
    }
    // The paper's observation: one ocean rank keeps up with the atmosphere
    // ranks when the atmosphere dominates the cost.
    double atm_busy = 0.0, ocean_busy = 0.0, rank0_total = 0.0;
    for (const auto& seg : res.timelines[0]) {
      if (seg.region == par::Region::kAtmosphere) atm_busy += seg.t1 - seg.t0;
      rank0_total += seg.t1 - seg.t0;
    }
    for (const auto& seg : res.timelines[n_atm])
      if (seg.region == par::Region::kOcean) ocean_busy += seg.t1 - seg.t0;
    std::printf("busy time: atmosphere rank 0 = %.2fs, ocean rank = %.2fs "
                "(ocean keeps up: %s); atm rank 0 comm-wait = %.2fs\n",
                atm_busy, ocean_busy,
                ocean_busy <= atm_busy * 1.3 ? "yes" : "no",
                res.region_seconds(0, par::Region::kCommWait));
    atm_busy_out = atm_busy;
    ocean_busy_out = ocean_busy;
    wait_out = res.region_seconds(0, par::Region::kCommWait);
    atm_share_out = rank0_total > 0.0 ? atm_busy / rank0_total : 0.0;
  });
  bench::BenchParams jcfg = {
      {"atm_ranks", n_atm},
      {"ocean_ranks", n_ocean},
      {"rank_layout", RankLayout::rows(n_atm, n_ocean).describe()},
      {"exchange", overlap ? "overlap" : "blocking"},
      {"spectral", engine ? "engine" : "reference"},
      {"telemetry", telemetry::trace_level_name(level)},
      {"verify", audit ? "audit" : "off"},
      {"observe", obs_label}};
  if (rep > 0) jcfg.push_back({"rep", rep});
  json.add("atm_busy_seconds", atm_busy_out, "s", jcfg);
  json.add("atm_busy_share", atm_share_out, "fraction", jcfg);
  json.add("ocean_busy_seconds", ocean_busy_out, "s", jcfg);
  json.add("atm_commwait_seconds", wait_out, "s", jcfg);
  return atm_busy_out;
}

/// Validate the full-trace result and export the merged Chrome trace;
/// throws foam::Error if any acceptance property fails.
void export_and_check_trace(const ParallelRunResult& res, int n_atm,
                            bench::BenchJson& json) {
  const int world = static_cast<int>(res.traces.size());

  // Span-derived per-region totals must agree with the flat recorder's
  // (both views come from the same begin/end events; only clock-read
  // jitter separates them).
  for (int r = 0; r < world; ++r) {
    for (int reg = 0; reg < par::kRegionCount; ++reg) {
      const auto region = static_cast<par::Region>(reg);
      const double flat_total = res.region_seconds(r, region);
      if (flat_total < 0.05) continue;
      const double span_total = res.span_region_seconds(r, region);
      FOAM_REQUIRE(std::abs(span_total - flat_total) <=
                       0.01 * flat_total + 1e-3,
                   "span/timeline mismatch rank "
                       << r << " region " << par::region_name(region) << ": "
                       << span_total << "s vs " << flat_total << "s");
    }
  }

  // Every rank must have recorded spans, and the atmosphere ranks nested
  // ones (component FOAM_TRACE_SCOPEs inside the region spans).
  int ranks_with_spans = 0;
  bool nested = false;
  for (const auto& t : res.traces) {
    if (!t.spans.empty()) ++ranks_with_spans;
    nested = nested || t.has_nested();
  }
  FOAM_REQUIRE(ranks_with_spans >= 4, "only " << ranks_with_spans
                                              << " ranks recorded spans");
  FOAM_REQUIRE(nested, "no nested spans recorded at full trace level");

  const std::string doc = telemetry::chrome_trace_json(res.traces);
  std::string err;
  FOAM_REQUIRE(telemetry::json_validate(doc, &err),
               "chrome trace JSON invalid: " << err);
  // The merged timeline must expose >= 4 ranks as distinct tids.
  std::set<std::string> tids;
  for (std::size_t pos = doc.find("\"tid\": "); pos != std::string::npos;
       pos = doc.find("\"tid\": ", pos + 1))
    tids.insert(doc.substr(pos + 7, doc.find_first_of(",}", pos) - pos - 7));
  FOAM_REQUIRE(tids.size() >= 4,
               "expected >= 4 distinct tids, got " << tids.size());

  const char* path = "TRACE_time_allocation.json";
  FOAM_REQUIRE(telemetry::write_chrome_trace(path, res.traces),
               "cannot write " << path);
  std::size_t n_spans = 0;
  for (const auto& t : res.traces) n_spans += t.spans.size();
  std::printf("\nwrote %s: %d ranks, %zu spans (load in ui.perfetto.dev)\n",
              path, world, n_spans);
  json.add("trace_ranks", static_cast<double>(tids.size()), "count", {});
  json.add("trace_spans", static_cast<double>(n_spans), "count", {});

  // Fold a digest of the gathered metrics into the bench JSON: the lead
  // atmosphere rank and the lead ocean rank, skipping the per-peer rows.
  for (const int r : {0, n_atm}) {
    if (r >= static_cast<int>(res.metrics.size())) continue;
    const bench::BenchParams mcfg = {{"rank", r}};
    for (const auto& [name, value] : res.metrics[r])
      if (name.find(".peer") == std::string::npos)
        json.add(name, value, "", mcfg);
  }
}

}  // namespace

int main() {
  const bool quick = std::getenv("FOAM_BENCH_QUICK") != nullptr;
  const double days = quick ? 0.25 : 1.0;
  using telemetry::TraceLevel;
  std::printf("=== Figure 2: per-processor time allocation ===\n");
  std::printf("(ranks are threads multiplexed over the host cores; shares,\n"
              " schedule structure and the atm:ocean busy ratio are the\n"
              " reproduced quantities)%s\n",
              quick ? " [quick]" : "");
  bench::BenchJson json("time_allocation");
  // A scaled version of the paper's 17-node placement (16+1) first, then
  // the small placements used for the scaling study, over the paper's one
  // simulated day (4 exchanges). Each placement is run blocking, then with
  // the overlapped exchange, for the exchange A/B; the 4+1 placement is
  // additionally run with the reference transforms for the spectral-engine
  // A/B (the atmosphere is transform-dominated under the emulated
  // 18-level core, so its busy time tracks the spectral share directly).
  if (!quick)
    for (const bool overlap : {false, true})
      run_placement(8, 1, days, overlap, /*engine=*/true,
                    TraceLevel::kRegions, json);
  run_placement(4, 1, days, /*overlap=*/false, /*engine=*/true,
                TraceLevel::kRegions, json);

  // --- telemetry overhead gate: regions-only tracing vs tracing off on
  // the same placement. Both runs keep the flat Fig. 2 recorder (that is
  // the pre-telemetry baseline); the delta isolates the hierarchical
  // tracer's cost. Busy seconds rather than wall seconds: barrier skew
  // lands in idle/wait and would drown the signal. The ranks are threads
  // multiplexed over the host cores, so a single-shot measurement carries
  // scheduler noise far above the tracer cost; contention only ever adds
  // time, so min-of-3 per level recovers the compute floor, and the reps
  // are interleaved off/regions so slow machine drift (frequency scaling,
  // noisy neighbors) lands on both levels equally.
  double busy_off = 0.0, busy_regions = 0.0;
  for (int rep = 1; rep <= 3; ++rep) {
    const double off = run_placement(4, 1, days, /*overlap=*/true,
                                     /*engine=*/true, TraceLevel::kOff,
                                     json, nullptr, rep);
    const double reg = run_placement(4, 1, days, /*overlap=*/true,
                                     /*engine=*/true, TraceLevel::kRegions,
                                     json, nullptr, rep);
    busy_off = rep == 1 ? off : std::min(busy_off, off);
    busy_regions = rep == 1 ? reg : std::min(busy_regions, reg);
  }
  const double overhead =
      busy_off > 0.0 ? (busy_regions - busy_off) / busy_off : 0.0;
  std::printf("\ntelemetry overhead (regions vs off, 4+1 overlap): "
              "%.2fs vs %.2fs busy (%+.2f%%)\n",
              busy_regions, busy_off, 100.0 * overhead);
  json.add("telemetry_regions_overhead", overhead, "fraction",
           {{"atm_ranks", 4}, {"ocean_ranks", 1}});
  FOAM_REQUIRE(busy_regions <= busy_off * 1.02 + 0.2,
               "regions-only telemetry overhead above budget: "
                   << busy_regions << "s vs " << busy_off << "s off");

  // --- par-verify audit overhead gate: audit-mode checking vs off on the
  // same placement and trace level as the telemetry gate, so busy_off is a
  // shared baseline. Audit mode stamps vector clocks on every message,
  // tracks wait-for state around every blocking call and audits quiescence
  // once per coupled day; the budget for all of it is 5% of busy time
  // (+0.2 s scheduler slack). Min-of-3 for the same reason as above. The
  // run also asserts zero findings — the coupled exchange must audit clean.
  double busy_audit = 0.0;
  for (int rep = 1; rep <= 3; ++rep) {
    const double aud = run_placement(4, 1, days, /*overlap=*/true,
                                     /*engine=*/true, TraceLevel::kOff,
                                     json, nullptr, rep, /*audit=*/true);
    busy_audit = rep == 1 ? aud : std::min(busy_audit, aud);
  }
  const double audit_overhead =
      busy_off > 0.0 ? (busy_audit - busy_off) / busy_off : 0.0;
  std::printf("\npar-verify overhead (audit vs off, 4+1 overlap): "
              "%.2fs vs %.2fs busy (%+.2f%%)\n",
              busy_audit, busy_off, 100.0 * audit_overhead);
  json.add("verify_audit_overhead", audit_overhead, "fraction",
           {{"atm_ranks", 4}, {"ocean_ranks", 1}});
  FOAM_REQUIRE(busy_audit <= busy_off * 1.05 + 0.2,
               "par-verify audit overhead above budget: "
                   << busy_audit << "s vs " << busy_off << "s off");

  // --- live observability gate: heartbeat + status feed vs plain run on
  // the shared busy_off baseline. The hot path adds three relaxed stores
  // per coupling exchange plus a day-boundary snapshot publish; budget 1%
  // of busy time (+0.2 s scheduler slack), min-of-3 as above.
  telemetry::ObservabilityOptions live;
  live.heartbeat = true;
  live.status = true;
  double busy_live = 0.0;
  for (int rep = 1; rep <= 3; ++rep) {
    const double b = run_placement(4, 1, days, /*overlap=*/true,
                                   /*engine=*/true, TraceLevel::kOff, json,
                                   nullptr, rep, /*audit=*/false, &live);
    busy_live = rep == 1 ? b : std::min(busy_live, b);
  }
  const double live_overhead =
      busy_off > 0.0 ? (busy_live - busy_off) / busy_off : 0.0;
  std::printf("\nobservability overhead (heartbeat+status vs off, 4+1 "
              "overlap): %.2fs vs %.2fs busy (%+.2f%%)\n",
              busy_live, busy_off, 100.0 * live_overhead);
  json.add("observe_live_overhead", live_overhead, "fraction",
           {{"atm_ranks", 4}, {"ocean_ranks", 1}});
  FOAM_REQUIRE(busy_live <= busy_off * 1.01 + 0.2,
               "heartbeat+status overhead above budget: "
                   << busy_live << "s vs " << busy_off << "s off");

  // --- sampling profiler gate: 1 kHz sampling on top of the live feed.
  // The rank-side cost is one relaxed store per span begin/end (the packed
  // leaf word); the monitor's try-lock sampling runs off the hot path.
  // Budget 3% of busy time. The captured run also gates *attribution*: the
  // sample histogram, scaled by the measured effective interval, must land
  // within 10% (+50 ms) of the exact flat-timeline totals for rank 0's
  // top-3 regions.
  telemetry::ObservabilityOptions prof = live;
  prof.profile = true;
  prof.profile_interval_seconds = 1e-3;
  double busy_prof = 0.0;
  ParallelRunResult profres;
  for (int rep = 1; rep <= 3; ++rep) {
    const double b = run_placement(4, 1, days, /*overlap=*/true,
                                   /*engine=*/true, TraceLevel::kOff, json,
                                   &profres, rep, /*audit=*/false, &prof);
    busy_prof = rep == 1 ? b : std::min(busy_prof, b);
  }
  const double prof_overhead =
      busy_off > 0.0 ? (busy_prof - busy_off) / busy_off : 0.0;
  std::printf("\nprofiler overhead (sampling vs off, 4+1 overlap): "
              "%.2fs vs %.2fs busy (%+.2f%%)\n",
              busy_prof, busy_off, 100.0 * prof_overhead);
  json.add("observe_profile_overhead", prof_overhead, "fraction",
           {{"atm_ranks", 4}, {"ocean_ranks", 1}});
  FOAM_REQUIRE(busy_prof <= busy_off * 1.03 + 0.2,
               "sampling profiler overhead above budget: "
                   << busy_prof << "s vs " << busy_off << "s off");

  FOAM_REQUIRE(profres.profile_interval_seconds > 0.0 &&
                   !profres.profile.empty(),
               "profiled run returned no samples");
  std::vector<std::pair<double, par::Region>> exact;
  for (int reg = 0; reg < par::kRegionCount; ++reg) {
    const auto region = static_cast<par::Region>(reg);
    const double t = profres.region_seconds(0, region);
    if (t >= 0.2) exact.emplace_back(t, region);
  }
  std::sort(exact.rbegin(), exact.rend());
  if (exact.size() > 3) exact.resize(3);
  FOAM_REQUIRE(!exact.empty(), "no rank-0 region reached 0.2 s");
  std::printf("profiler attribution vs exact timelines (rank 0, interval "
              "%.3g ms):\n",
              profres.profile_interval_seconds * 1e3);
  for (const auto& [t, region] : exact) {
    const double sampled = profres.profile_seconds(0, region);
    std::printf("  %-12s exact %.3fs  sampled %.3fs  (%+.1f%%)\n",
                par::region_name(region), t, sampled,
                t > 0.0 ? 100.0 * (sampled - t) / t : 0.0);
    json.add("profile_attribution_error", std::abs(sampled - t) / t,
             "fraction", {{"rank", 0}, {"region", par::region_name(region)}});
    FOAM_REQUIRE(std::abs(sampled - t) <= 0.10 * t + 0.05,
                 "profiler attribution off for region "
                     << par::region_name(region) << ": sampled " << sampled
                     << "s vs exact " << t << "s");
  }

  // --- paper-scale audited day: the 8+1 placement under audit mode, with
  // the zero-findings assertion inside run_placement as the acceptance
  // check that a full coupled day is deadlock-free and leak-free.
  run_placement(8, 1, days, /*overlap=*/true, /*engine=*/true,
                TraceLevel::kOff, json, nullptr, 0, /*audit=*/true);

  const double ref_busy = run_placement(4, 1, days, /*overlap=*/true,
                                        /*engine=*/false,
                                        TraceLevel::kRegions, json);
  if (busy_regions > 0.0) {
    std::printf("\nspectral engine A/B (4 atm + 1 ocean, overlap): "
                "atm busy %.2fs engine vs %.2fs reference (%.2fx)\n",
                busy_regions, ref_busy, ref_busy / busy_regions);
    json.add("atm_busy_engine_speedup", ref_busy / busy_regions, "x",
             {{"atm_ranks", 4}, {"ocean_ranks", 1},
              {"exchange", "overlap"}});
  }

  // --- full-trace run: export + self-validate the Chrome trace.
  ParallelRunResult full;
  run_placement(4, 1, days, /*overlap=*/true, /*engine=*/true,
                TraceLevel::kFull, json, &full);
  export_and_check_trace(full, /*n_atm=*/4, json);
  return 0;
}
