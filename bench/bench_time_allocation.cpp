// Figure 2 — time allocation for a typical FOAM run.
//
// The paper's figure shows, for each SP processor of a 17-node run (16
// atmosphere + 1 ocean), how one simulated day divides into atmosphere
// (green), coupler (red), ocean (blue) and idle (purple) time, with the
// twice-daily radiation recomputations visible as long atmosphere steps
// and the single ocean processor keeping up with 16 atmosphere processors.
//
// This bench runs the same placement (scaled to the host: the runtime
// multiplexes ranks onto the available cores, so on a single-core host the
// per-rank *fractions* are the meaningful output, not wall concurrency)
// and prints the per-rank timeline and aggregate shares. Each placement is
// run twice — blocking exchange, then comm/compute overlap — so the
// "comm-wait" column shows the atmosphere rank's exchange stall shrinking
// when the SST reply is left in flight across the next interval.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "foam/coupled.hpp"

using namespace foam;

namespace {

/// \p engine toggles the plan-based spectral engine vs the reference
/// transform loops (the A/B that shows the atmosphere's spectral share
/// shrinking). Returns the lead atmosphere rank's busy seconds.
double run_placement(int n_atm, int n_ocean, double days, bool overlap,
                     bool engine, bench::BenchJson& json) {
  FoamConfig cfg = FoamConfig::paper_default();
  cfg.atm.emulate_full_core_cost = true;
  cfg.atm.emulate_transforms_per_level = 40;  // full 18-level core cost
  cfg.atm.spectral_engine = engine;
  const int world = n_atm + n_ocean;
  double atm_busy_out = 0.0, ocean_busy_out = 0.0, wait_out = 0.0,
         atm_share_out = 0.0;
  std::printf(
      "\n--- placement: %d atmosphere + %d ocean ranks, %.2f day, "
      "%s exchange, %s transforms ---\n",
      n_atm, n_ocean, days, overlap ? "overlap" : "blocking",
      engine ? "engine" : "reference");
  par::run(world, [&](par::Comm& comm) {
    ParallelRunOptions opts;
    opts.n_atm = n_atm;
    opts.overlap = overlap;
    const auto res = run_coupled_parallel(comm, opts, cfg, days);
    if (comm.rank() != 0) return;
    std::printf("simulated %.2f h in %.1f s wall => speedup %.0fx\n",
                res.simulated_seconds / 3600.0, res.wall_seconds,
                res.speedup());
    std::printf(
        "%-6s %9s %9s %9s %9s %9s   bar (a=atm c=coupler o=ocean w=wait "
        ".=idle)\n",
        "rank", "atm%", "coupler%", "ocean%", "wait%", "idle%");
    for (int r = 0; r < world; ++r) {
      double tot[par::kRegionCount] = {0};
      double sum = 0.0;
      for (const auto& seg : res.timelines[r]) {
        tot[static_cast<int>(seg.region)] += seg.t1 - seg.t0;
        sum += seg.t1 - seg.t0;
      }
      if (sum <= 0.0) sum = 1.0;
      // Render the timeline as a 60-char bar in recorded order.
      char bar[61];
      const double t_end = res.timelines[r].empty()
                               ? 1.0
                               : res.timelines[r].back().t1;
      for (int x = 0; x < 60; ++x) {
        const double t = (x + 0.5) / 60.0 * t_end;
        char ch = '.';
        for (const auto& seg : res.timelines[r]) {
          if (t >= seg.t0 && t < seg.t1) {
            switch (seg.region) {
              case par::Region::kAtmosphere: ch = 'a'; break;
              case par::Region::kCoupler: ch = 'c'; break;
              case par::Region::kOcean: ch = 'o'; break;
              case par::Region::kCommWait: ch = 'w'; break;
              default: ch = '.'; break;
            }
            break;
          }
        }
        bar[x] = ch;
      }
      bar[60] = '\0';
      std::printf("%-6d %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%   %s\n", r,
                  100.0 * tot[0] / sum, 100.0 * tot[1] / sum,
                  100.0 * tot[2] / sum,
                  100.0 * tot[static_cast<int>(par::Region::kCommWait)] /
                      sum,
                  100.0 * tot[3] / sum, bar);
    }
    // The paper's observation: one ocean rank keeps up with the atmosphere
    // ranks when the atmosphere dominates the cost.
    double atm_busy = 0.0, ocean_busy = 0.0, rank0_total = 0.0;
    for (const auto& seg : res.timelines[0]) {
      if (seg.region == par::Region::kAtmosphere) atm_busy += seg.t1 - seg.t0;
      rank0_total += seg.t1 - seg.t0;
    }
    for (const auto& seg : res.timelines[n_atm])
      if (seg.region == par::Region::kOcean) ocean_busy += seg.t1 - seg.t0;
    std::printf("busy time: atmosphere rank 0 = %.2fs, ocean rank = %.2fs "
                "(ocean keeps up: %s); atm rank 0 comm-wait = %.2fs\n",
                atm_busy, ocean_busy,
                ocean_busy <= atm_busy * 1.3 ? "yes" : "no",
                res.region_seconds(0, par::Region::kCommWait));
    atm_busy_out = atm_busy;
    ocean_busy_out = ocean_busy;
    wait_out = res.region_seconds(0, par::Region::kCommWait);
    atm_share_out = rank0_total > 0.0 ? atm_busy / rank0_total : 0.0;
  });
  const std::vector<std::pair<std::string, std::string>> jcfg = {
      {"atm_ranks", std::to_string(n_atm)},
      {"ocean_ranks", std::to_string(n_ocean)},
      {"exchange", overlap ? "overlap" : "blocking"},
      {"spectral", engine ? "engine" : "reference"}};
  json.add("atm_busy_seconds", atm_busy_out, "s", jcfg);
  json.add("atm_busy_share", atm_share_out, "fraction", jcfg);
  json.add("ocean_busy_seconds", ocean_busy_out, "s", jcfg);
  json.add("atm_commwait_seconds", wait_out, "s", jcfg);
  return atm_busy_out;
}

}  // namespace

int main() {
  std::printf("=== Figure 2: per-processor time allocation ===\n");
  std::printf("(ranks are threads multiplexed over the host cores; shares,\n"
              " schedule structure and the atm:ocean busy ratio are the\n"
              " reproduced quantities)\n");
  bench::BenchJson json("time_allocation");
  // A scaled version of the paper's 17-node placement (16+1) first, then
  // the small placements used for the scaling study, over the paper's one
  // simulated day (4 exchanges). Each placement is run blocking, then with
  // the overlapped exchange, for the exchange A/B; the 4+1 placement is
  // additionally run with the reference transforms for the spectral-engine
  // A/B (the atmosphere is transform-dominated under the emulated
  // 18-level core, so its busy time tracks the spectral share directly).
  for (const bool overlap : {false, true})
    run_placement(8, 1, 1.0, overlap, /*engine=*/true, json);
  double eng_busy = 0.0, ref_busy = 0.0;
  for (const bool overlap : {false, true})
    eng_busy = run_placement(4, 1, 1.0, overlap, /*engine=*/true, json);
  ref_busy = run_placement(4, 1, 1.0, /*overlap=*/true, /*engine=*/false,
                           json);
  if (eng_busy > 0.0) {
    std::printf("\nspectral engine A/B (4 atm + 1 ocean, overlap): "
                "atm busy %.2fs engine vs %.2fs reference (%.2fx)\n",
                eng_busy, ref_busy, ref_busy / eng_busy);
    json.add("atm_busy_engine_speedup", ref_busy / eng_busy, "x",
             {{"atm_ranks", "4"}, {"ocean_ranks", "1"},
              {"exchange", "overlap"}});
  }
  return 0;
}
