// Configuration-file-driven FOAM run: the production entry point.
//
//   ./foam_run run.cfg
//
// Example run.cfg (everything defaults to the paper configuration):
//
//   # tropical-Pacific sensitivity run
//   atm.physics = ccm3
//   atm.co2_factor = 2.0
//   coupling.ocean_accel = 4
//   run.days = 30
//   run.history_path = co2x2_history.foam
//
// Restart by pointing run.restart_path at a checkpoint produced by a
// previous run (one is written next to the history as <history>.restart).

#include <cstdio>

#include "base/history.hpp"
#include "foam/run_config.hpp"
#include "par/timers.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config-file>\n", argv[0]);
    return 2;
  }
  try {
    const RunPlan plan = run_plan_from(Config::from_file(argv[1]));
    std::printf("FOAM run: %.1f days, atm %dx%dx%d R%d, ocean %dx%dx%d\n",
                plan.days, plan.model.atm.nlon, plan.model.atm.nlat,
                plan.model.atm.nlev, plan.model.atm.mmax,
                plan.model.ocean.nx, plan.model.ocean.ny,
                plan.model.ocean.nz);
    CoupledFoam model(plan.model);
    if (!plan.restart_path.empty()) {
      model.restore(plan.restart_path);
      std::printf("restored from %s at %s\n", plan.restart_path.c_str(),
                  model.now().to_string().c_str());
    }
    par::Stopwatch wall;
    const double report_every = std::max(1.0, plan.days / 10.0);
    for (double d = 0.0; d < plan.days; d += report_every) {
      model.run_days(std::min(report_every, plan.days - d));
      const auto diag = model.ocean_model().diagnostics();
      std::printf("  %s | SST %.2f C | atm T %.1f K | precip %.2f mm/day\n",
                  model.now().to_string().c_str(), diag.mean_sst,
                  model.atmosphere().mean_t_sfc_level(),
                  model.atmosphere().mean_precip() * 86400.0);
    }
    std::printf("completed at %.0fx real time\n",
                plan.days * 86400.0 / wall.seconds());
    if (!plan.history_path.empty()) {
      HistoryWriter hist(plan.history_path);
      hist.write("sst", model.sst());
      hist.write("ice_fraction", model.coupling().ice_fraction_o());
      hist.write("atm_temperature", model.atmosphere().temperature());
      model.checkpoint(plan.history_path + ".restart");
      std::printf("history: %s (+ .restart checkpoint)\n",
                  plan.history_path.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
