// Configuration-file-driven FOAM run: the production entry point.
//
//   ./foam_run run.cfg
//
// Example run.cfg (everything defaults to the paper configuration):
//
//   # tropical-Pacific sensitivity run
//   atm.physics = ccm3
//   atm.co2_factor = 2.0
//   coupling.ocean_accel = 4
//   run.days = 30
//   run.history_path = co2x2_history.foam
//
// Restart by pointing run.restart_path at a checkpoint produced by a
// previous run (one is written next to the history as <history>.restart),
// or turn on periodic crash-safe checkpoints and resume from the newest:
//
//   run.checkpoint_prefix = co2x2_ckpt
//   run.checkpoint_every_days = 5
//   run.checkpoint_resume = true     # no-op flag edit between launches
//
// Checkpoints land as <prefix>.day<D>.foam with <prefix>.latest.foam
// atomically tracking the newest complete one.

#include <cmath>
#include <cstdint>
#include <cstdio>

#include "base/history.hpp"
#include "foam/checkpoint.hpp"
#include "foam/run_config.hpp"
#include "par/timers.hpp"
#include "telemetry/observe.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <config-file>\n", argv[0]);
    return 2;
  }
  try {
    const RunPlan plan = run_plan_from(Config::from_file(argv[1]));
    std::printf("FOAM run: %.1f days, atm %dx%dx%d R%d, ocean %dx%dx%d\n",
                plan.days, plan.model.atm.nlon, plan.model.atm.nlat,
                plan.model.atm.nlev, plan.model.atm.mmax,
                plan.model.ocean.nx, plan.model.ocean.ny,
                plan.model.ocean.nz);
    CoupledFoam model(plan.model);
    double done = 0.0;
    if (plan.checkpoint.resume) {
      const std::int64_t day = ckpt_latest_day(plan.checkpoint.path_prefix);
      model.restore(ckpt_serial_path(plan.checkpoint.path_prefix, day));
      done = static_cast<double>(model.now().seconds()) / 86400.0;
      std::printf("resumed from checkpoint day %lld at %s\n",
                  static_cast<long long>(day),
                  model.now().to_string().c_str());
    } else if (!plan.restart_path.empty()) {
      model.restore(plan.restart_path);
      std::printf("restored from %s at %s\n", plan.restart_path.c_str(),
                  model.now().to_string().c_str());
    }
    // Serial observability: the single "rank" heartbeats per report chunk,
    // so status.json (run.observe_dir / FOAM_OBSERVE) tracks progress and
    // an abort still leaves a postmortem trace behind.
    telemetry::Telemetry tel;
    telemetry::ScopedSession session(tel);
    telemetry::ScopedRankObserver obs(plan.observe, 0, 1, "serial",
                                      plan.days);
    par::Stopwatch wall;
    const double report_every = std::max(1.0, plan.days / 10.0);
    const std::int64_t ckpt_every =
        plan.checkpoint.enabled()
            ? std::max<std::int64_t>(
                  1, std::llround(plan.checkpoint.every_days))
            : 0;
    while (done < plan.days - 1e-9) {
      model.run_days(std::min(report_every, plan.days - done));
      done = static_cast<double>(model.now().seconds()) / 86400.0;
      if (obs) {
        obs->beat(done);
        obs->publish_self();
      }
      const auto diag = model.ocean_model().diagnostics();
      std::printf("  %s | SST %.2f C | atm T %.1f K | precip %.2f mm/day\n",
                  model.now().to_string().c_str(), diag.mean_sst,
                  model.atmosphere().mean_t_sfc_level(),
                  model.atmosphere().mean_precip() * 86400.0);
      // Checkpoint whenever the run lands on a whole day that matches the
      // cadence; the latest pointer only advances after a clean close().
      const std::int64_t day = std::llround(done);
      if (ckpt_every > 0 && std::abs(done - static_cast<double>(day)) < 1e-6 &&
          day > 0 && day % ckpt_every == 0) {
        model.checkpoint(ckpt_serial_path(plan.checkpoint.path_prefix, day));
        ckpt_write_latest(plan.checkpoint.path_prefix, day);
        std::printf("  checkpoint: day %lld\n", static_cast<long long>(day));
      }
    }
    if (obs) {
      obs->finish_rank();
      obs->finish_run(done);
    }
    std::printf("completed at %.0fx real time\n",
                plan.days * 86400.0 / wall.seconds());
    if (!plan.history_path.empty()) {
      HistoryWriter hist(plan.history_path);
      hist.write("sst", model.sst());
      hist.write("ice_fraction", model.coupling().ice_fraction_o());
      hist.write("atm_temperature", model.atmosphere().temperature());
      hist.close();  // surface write failures instead of logging them
      model.checkpoint(plan.history_path + ".restart");
      std::printf("history: %s (+ .restart checkpoint)\n",
                  plan.history_path.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
