// Long-duration coupled variability — the paper's reason to exist:
// "to implement very long simulations for studying variability on the
// longest time scales."
//
// Runs the coupled model with an accelerated ocean, samples SST
// periodically, and pushes the record through the Figure-4 analysis
// pipeline (anomalies -> low-pass -> EOF -> VARIMAX), printing the leading
// modes and their time series. A scaled-down stand-in for the paper's
// 500-year production runs; crank the arguments on bigger hardware.
//
//   ./coupled_century [samples] [days-per-sample]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "base/constants.hpp"
#include "foam/coupled.hpp"
#include "par/timers.hpp"
#include "stats/eof.hpp"
#include "stats/lowpass.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  namespace c = foam::constants;
  const int samples = argc > 1 ? std::atoi(argv[1]) : 48;
  const double days_per = argc > 2 ? std::atof(argv[2]) : 2.0;

  FoamConfig cfg = FoamConfig::testing();
  cfg.ocean = ocean::OceanConfig::testing(64, 64, 8);
  cfg.ocean_accel = 6.0;
  std::printf("coupled variability run: %d samples x %.0f days "
              "(ocean accel %.0fx)\n",
              samples, days_per, cfg.ocean_accel);

  CoupledFoam model(cfg);
  model.run_days(8.0);  // spin-up

  const auto& grid = model.ocean_grid();
  const auto& mask = model.ocean_mask();
  std::vector<int> pi, pj;
  std::vector<double> weight;
  for (int j = 0; j < grid.nlat(); ++j) {
    const double lat = grid.lat(j) * c::rad2deg;
    if (std::abs(lat) > 65.0) continue;
    for (int i = 0; i < grid.nlon(); ++i)
      if (mask(i, j) != 0) {
        pi.push_back(i);
        pj.push_back(j);
        weight.push_back(std::sqrt(grid.cell_area(j)));
      }
  }
  const int npoint = static_cast<int>(pi.size());

  par::Stopwatch wall;
  std::vector<double> record(static_cast<std::size_t>(samples) * npoint);
  for (int t = 0; t < samples; ++t) {
    model.run_days(days_per);
    const Field2Dd sst = model.sst();
    for (int p = 0; p < npoint; ++p)
      record[static_cast<std::size_t>(t) * npoint + p] = sst(pi[p], pj[p]);
    if ((t + 1) % 12 == 0)
      std::printf("  sample %3d/%d (%.0f coupled days, %.0fs wall)\n", t + 1,
                  samples, (t + 1) * days_per, wall.seconds());
  }

  // Remove the equilibration drift: the paper analyzed an equilibrated
  // 500-year run; our scaled run still trends, and the trend would
  // masquerade as the leading mode.
  stats::detrend_columns(record, samples, npoint);
  stats::compute_anomalies(record, samples, npoint);
  const double cutoff = samples / 5.0;
  const int half = static_cast<int>(cutoff);
  const auto w = stats::lanczos_lowpass_weights(cutoff, half);
  const int nf = samples - 2 * half;
  std::vector<double> filtered(static_cast<std::size_t>(nf) * npoint);
  for (int p = 0; p < npoint; ++p) {
    std::vector<double> series(samples);
    for (int t = 0; t < samples; ++t)
      series[t] = record[static_cast<std::size_t>(t) * npoint + p];
    const auto f = stats::apply_symmetric_filter(series, w);
    for (int t = 0; t < nf; ++t)
      filtered[static_cast<std::size_t>(t) * npoint + p] = f[t];
  }

  const auto eof = stats::eof_analysis(filtered, nf, npoint, weight, 4);
  const auto rot = stats::varimax(eof, 3);
  std::printf("\nlow-frequency SST modes (explained variance):\n");
  for (int k = 0; k < 4; ++k)
    std::printf("  EOF %d: %5.1f%%\n", k + 1,
                100.0 * eof.variance_fraction[k]);
  std::printf("after VARIMAX rotation of the first 3:\n");
  for (int k = 0; k < 3; ++k) {
    std::printf("  factor %d: %5.1f%%, series ", k + 1,
                100.0 * rot.variance_fraction[k]);
    for (int t = 0; t < nf; t += std::max(1, nf / 10))
      std::printf("%+.1f ", rot.scores[k][t]);
    std::printf("\n");
  }
  std::printf("total wall: %.0fs\n", wall.seconds());
  return 0;
}
