// Ocean spin-up: the FOAM ocean model on its own, driven by analytic wind
// stress and a restoring surface heat flux — the standard ocean-only
// experiment used while the coupled model was being assembled, and the
// configuration behind the 105,000x-real-time ocean benchmark.
//
//   ./ocean_spinup [days] [ranks]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/history.hpp"
#include "data/earth.hpp"
#include "ocean/model.hpp"
#include "par/timers.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  const double days = argc > 1 ? std::atof(argv[1]) : 20.0;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 1;

  numerics::MercatorGrid grid(128, 128,
                              ocean::OceanConfig::kStandardLatMax);
  const Field2Dd bathy = data::bathymetry(grid);
  const ocean::OceanConfig cfg = ocean::OceanConfig::foam_default();
  std::printf("FOAM ocean spin-up: 128x128x16, %.0f days, %d rank(s)\n",
              days, ranks);

  par::run(ranks, [&](par::Comm& comm) {
    ocean::OceanModel model(cfg, grid, bathy,
                            comm.size() > 1 ? &comm : nullptr);
    model.init_climatology();
    Field2Dd taux(128, 128), tauy(128, 128, 0.0);
    for (int j = 0; j < 128; ++j)
      for (int i = 0; i < 128; ++i)
        taux(i, j) = ocean::analytic_zonal_stress(grid.lat(j));
    ocean::OceanForcing wind;
    wind.wind_x = &taux;
    wind.wind_y = &tauy;
    model.set_forcing(wind);

    par::Stopwatch wall;
    for (double d = 0.0; d < days; d += 5.0) {
      // Monthly-ish restoring toward the SST climatology.
      const Field2Dd qnet = ocean::restoring_heat_flux(
          grid, model.gather(model.sst()),
          static_cast<int>(d / 30.0) % 12);
      ocean::OceanForcing restoring;
      restoring.heat = &qnet;
      model.set_forcing(restoring);
      model.run_days(std::min(5.0, days - d));
      const auto diag = model.diagnostics();
      if (comm.rank() == 0)
        std::printf("  day %5.0f | SST %.2f C | KE %.2e m2/s2 | "
                    "max current %.2f m/s\n",
                    d + 5.0, diag.mean_sst, diag.mean_kinetic,
                    diag.max_speed);
    }
    if (comm.rank() == 0) {
      std::printf("%.0f days in %.1f s => %.0fx real time on %d rank(s)\n",
                  days, wall.seconds(), days * 86400.0 / wall.seconds(),
                  comm.size());
      HistoryWriter hist("ocean_spinup_history.foam");
      hist.write("sst", model.gather(model.sst()));
      hist.write("eta", model.gather(model.eta()));
      std::printf("history written to ocean_spinup_history.foam\n");
    }
  });
  return 0;
}
