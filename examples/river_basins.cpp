// The closed hydrological cycle: land hydrology feeding the river model.
//
// "a closed hydrological cycle is implemented by the coupler, with a
// simple explicit river model that results in a finite fresh water delay
// and a set of point sources (river mouths) for continental runoff."
//
// This example rains uniformly on the continents, routes the runoff, and
// prints the drainage map, the biggest river mouths and the freshwater
// delay (time for half the water to reach the sea).
//
//   ./river_basins [days]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "data/earth.hpp"
#include "numerics/grid.hpp"
#include "river/river.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  const double days = argc > 1 ? std::atof(argv[1]) : 400.0;

  numerics::GaussianGrid grid(48, 40);
  const auto mask = data::land_mask(grid);
  const auto oro = data::orography(grid);
  river::RiverModel rivers(grid, mask, oro);
  std::printf("river routing on the R15 grid: %d drainage basins\n",
              rivers.count_basins());

  // One big storm: 5 cm of runoff on every land cell.
  Field2Dd runoff(48, 40, 0.0);
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      if (mask(i, j) != 0) runoff(i, j) = 0.05;
  rivers.add_runoff(runoff);
  const double v0 = rivers.total_volume();
  std::printf("injected %.2e m^3 of runoff; routing at u = 0.35 m/s...\n",
              v0);

  Field2Dd mouths(48, 40, 0.0);
  double half_time = -1.0;
  for (double d = 0.0; d < days; d += 1.0) {
    rivers.step(86400.0);
    Field2Dd discharge = rivers.drain_discharge(86400.0);
    for (int j = 0; j < 40; ++j)
      for (int i = 0; i < 48; ++i) mouths(i, j) += discharge(i, j) * 86400.0;
    if (half_time < 0.0 && rivers.total_volume() < 0.5 * v0)
      half_time = d + 1.0;
  }
  std::printf("freshwater delay: half of the water reached the sea after "
              "%.0f days;\n%.1f%% still in transit after %.0f days\n",
              half_time, 100.0 * rivers.total_volume() / v0, days);

  // The largest river mouths.
  struct Mouth {
    double volume;
    int i, j;
  };
  std::vector<Mouth> all;
  for (int j = 0; j < 40; ++j)
    for (int i = 0; i < 48; ++i)
      if (mouths(i, j) > 0.0) all.push_back({mouths(i, j), i, j});
  std::sort(all.begin(), all.end(),
            [](const Mouth& a, const Mouth& b) { return a.volume > b.volume; });
  std::printf("\nlargest river mouths (cumulative discharge):\n");
  for (int r = 0; r < 8 && r < static_cast<int>(all.size()); ++r)
    std::printf("  %2d. lon %5.1fE lat %+5.1f : %.2e m^3\n", r + 1,
                grid.lon(all[r].i) * 57.2958, grid.lat(all[r].j) * 57.2958,
                all[r].volume);

  // Drainage map: land cells lettered by flow direction, mouths as '*'.
  std::printf("\ndrainage map (v^<> flow, * mouth, . ocean):\n");
  for (int j = 39; j >= 0; j -= 2) {
    for (int i = 0; i < 48; ++i) {
      if (mask(i, j) == 0) {
        std::putchar(mouths(i, j) > 0.0 ? '*' : '.');
        continue;
      }
      int ii, jj;
      rivers.downstream(i, j, ii, jj);
      char ch = 'o';
      if (jj > j) ch = '^';
      else if (jj < j) ch = 'v';
      else if ((ii - i + 48) % 48 == 1) ch = '>';
      else ch = '<';
      std::putchar(ch);
    }
    std::putchar('\n');
  }
  return 0;
}
