// Transient greenhouse experiment — the workload class the paper's
// introduction motivates:
//
//   "there is enormous practical and theoretical interest in transient
//    climate responses to rapid changes in atmospheric conditions, such as
//    changes in atmospheric concentrations of radiatively active
//    ('greenhouse') gases... To address this question rigorously would
//    require ensembles of similar runs."
//
// Runs a small ensemble of coupled control and elevated-CO2 pairs
// (differing only in initial-condition seed), and reports the ensemble-mean
// SST response with its spread — separating the forced signal from
// intrinsic variability exactly as the paper prescribes.
//
//   ./greenhouse_transient [days] [ensemble-size] [co2-factor]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "foam/coupled.hpp"
#include "par/timers.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  const double days = argc > 1 ? std::atof(argv[1]) : 20.0;
  const int members = argc > 2 ? std::atoi(argv[2]) : 3;
  const double co2 = argc > 3 ? std::atof(argv[3]) : 4.0;

  std::printf("transient greenhouse ensemble: %d member pairs, %.0f days, "
              "%gx CO2\n",
              members, days, co2);
  par::Stopwatch wall;
  std::vector<double> responses;
  for (int m = 0; m < members; ++m) {
    auto run_one = [&](double co2_factor, unsigned seed) {
      FoamConfig cfg = FoamConfig::testing();
      cfg.ocean = ocean::OceanConfig::testing(64, 64, 8);
      cfg.ocean_accel = 4.0;
      cfg.atm.co2_factor = co2_factor;
      CoupledFoam model(cfg);
      model.atmosphere().init_default(seed);
      model.run_days(days);
      return model.ocean_model().diagnostics().mean_sst;
    };
    const unsigned seed = 7u + 13u * m;
    const double control = run_one(1.0, seed);
    const double warmed = run_one(co2, seed);
    responses.push_back(warmed - control);
    std::printf("  member %d: control %.3f C, %gx CO2 %.3f C, "
                "response %+.3f C\n",
                m, control, co2, warmed, responses.back());
  }
  double mean = 0.0;
  for (const double r : responses) mean += r;
  mean /= members;
  double var = 0.0;
  for (const double r : responses) var += (r - mean) * (r - mean);
  const double spread =
      members > 1 ? std::sqrt(var / (members - 1)) : 0.0;
  std::printf("\nensemble-mean SST response: %+.3f C (spread %.3f C) "
              "after %.0f coupled days\n",
              mean, spread, days);
  std::printf("(the transient response builds over decades; this scaled run "
              "shows the early-time signal emerging from variability)\n");
  std::printf("wall: %.0fs\n", wall.seconds());
  return 0;
}
