// Quickstart: build the coupled Fast Ocean-Atmosphere Model, run it for a
// few simulated days, and write a history file.
//
//   ./quickstart [days] [history-path]
//
// This is the smallest complete use of the public API: construct a
// FoamConfig, run the CoupledFoam driver, inspect diagnostics, and save
// fields with the HistoryWriter.

#include <cstdio>
#include <cstdlib>

#include "base/history.hpp"
#include "foam/coupled.hpp"
#include "par/timers.hpp"

int main(int argc, char** argv) {
  using namespace foam;
  const double days = argc > 1 ? std::atof(argv[1]) : 3.0;
  const std::string path = argc > 2 ? argv[2] : "quickstart_history.foam";

  // The paper's configuration: R15 atmosphere (48 x 40, 18 levels, 30-min
  // steps), 128 x 128 x 16 ocean, 6-hourly coupling.
  FoamConfig cfg = FoamConfig::paper_default();
  std::printf("FOAM quickstart: %.1f coupled days at R15 + 128x128x16\n",
              days);

  CoupledFoam model(cfg);
  par::Stopwatch wall;
  for (double d = 0.0; d < days; d += 1.0) {
    model.run_days(1.0);
    const auto ocn = model.ocean_model().diagnostics();
    std::printf("  %s | SST %.2f C | max current %.2f m/s | "
                "T(atm,sfc) %.1f K | precip %.2f mm/day\n",
                model.now().to_string().c_str(), ocn.mean_sst, ocn.max_speed,
                model.atmosphere().mean_t_sfc_level(),
                model.atmosphere().mean_precip() * 86400.0);
  }
  const double speedup = days * 86400.0 / wall.seconds();
  std::printf("done: %.1f days in %.1f s => %.0fx real time (serial)\n",
              days, wall.seconds(), speedup);

  HistoryWriter hist(path);
  hist.write("sst", model.sst());
  hist.write("atm_temperature", model.atmosphere().temperature());
  hist.write("ice_fraction", model.coupling().ice_fraction_o());
  hist.write_scalar("model_speedup", speedup);
  std::printf("history written to %s\n", path.c_str());
  return 0;
}
